"""Validation tests for the configuration dataclasses."""

import dataclasses

import pytest

from repro.config import (
    DataConfig,
    ExperimentConfig,
    FedLConfig,
    NetworkConfig,
    PopulationConfig,
    TrainingConfig,
)


class TestNetworkConfig:
    def test_defaults_match_paper(self):
        cfg = NetworkConfig()
        assert cfg.bandwidth_hz == 20e6
        assert cfg.noise_psd_dbm_hz == -174.0
        assert cfg.cell_radius_m == 500.0
        assert cfg.shadowing_std_db == 8.0
        assert cfg.tx_power_dbm == 10.0

    @pytest.mark.parametrize(
        "field,value",
        [
            ("bandwidth_hz", 0.0),
            ("cell_radius_m", -1.0),
            ("upload_bits", 0.0),
            ("min_distance_m", 0.0),
            ("shadowing_corr", 1.0),
            ("shadowing_corr", -0.1),
        ],
    )
    def test_rejects_bad_values(self, field, value):
        with pytest.raises(ValueError):
            dataclasses.replace(NetworkConfig(), **{field: value})


class TestPopulationConfig:
    def test_defaults_match_paper(self):
        cfg = PopulationConfig()
        assert cfg.num_clients == 100
        assert cfg.cycles_per_bit_range == (10.0, 30.0)
        assert cfg.cpu_freq_hz == 2e9
        assert cfg.cost_range == (0.1, 12.0)

    @pytest.mark.parametrize(
        "field,value",
        [
            ("num_clients", 0),
            ("cycles_per_bit_range", (30.0, 10.0)),
            ("cost_range", (0.0, 12.0)),
            ("availability_prob", 0.0),
            ("availability_prob", 1.5),
            ("cpu_freq_jitter", 1.0),
            ("cost_volatility", -0.1),
        ],
    )
    def test_rejects_bad_values(self, field, value):
        with pytest.raises(ValueError):
            dataclasses.replace(PopulationConfig(), **{field: value})


class TestDataConfig:
    def test_rejects_unknown_dataset(self):
        with pytest.raises(ValueError):
            DataConfig(dataset="imagenet")

    @pytest.mark.parametrize(
        "field,value",
        [
            ("non_iid_principal_frac", 1.5),
            ("samples_per_client", 0),
            ("num_classes", 1),
            ("test_samples", 0),
        ],
    )
    def test_rejects_bad_values(self, field, value):
        with pytest.raises(ValueError):
            dataclasses.replace(DataConfig(), **{field: value})


class TestTrainingConfig:
    def test_rejects_unknown_model(self):
        with pytest.raises(ValueError):
            TrainingConfig(model="transformer")

    @pytest.mark.parametrize(
        "field,value",
        [
            ("local_sgd_steps", 0),
            ("sgd_lr", 0.0),
            ("sigma1", -1.0),
            ("theta0", 1.0),
            ("theta", 0.0),
        ],
    )
    def test_rejects_bad_values(self, field, value):
        with pytest.raises(ValueError):
            dataclasses.replace(TrainingConfig(), **{field: value})


class TestFedLConfig:
    def test_rejects_bad_solver(self):
        with pytest.raises(ValueError):
            FedLConfig(solver="cvxpy")

    def test_rejects_bad_rounding(self):
        with pytest.raises(ValueError):
            FedLConfig(rounding="floor")

    def test_rho_max_at_least_one(self):
        with pytest.raises(ValueError):
            FedLConfig(rho_max=0.5)

    def test_explicit_steps_validated(self):
        with pytest.raises(ValueError):
            FedLConfig(beta=-1.0)
        with pytest.raises(ValueError):
            FedLConfig(delta=0.0)
        with pytest.raises(ValueError):
            FedLConfig(step_scale=0.0)


class TestExperimentConfig:
    def test_default_is_valid(self):
        ExperimentConfig()

    def test_min_participants_vs_fleet(self):
        with pytest.raises(ValueError):
            ExperimentConfig(
                min_participants=10,
                population=PopulationConfig(num_clients=5),
            )

    def test_replace_helper(self):
        cfg = ExperimentConfig()
        cfg2 = cfg.replace(budget=999.0)
        assert cfg2.budget == 999.0
        assert cfg.budget != 999.0  # original untouched (frozen)

    def test_rejects_nonpositive_budget(self):
        with pytest.raises(ValueError):
            ExperimentConfig(budget=0.0)
