"""Additional property-based tests across substrates."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.offline import epoch_frontier
from repro.fl.compression import topk_sparsify, uniform_quantize
from repro.fl.hierarchy import kmeans
from repro.nn.models import build_model
from repro.nn.serialization import load_checkpoint, save_checkpoint


class TestFrontierProperties:
    @given(st.integers(0, 5_000))
    @settings(max_examples=60, deadline=None)
    def test_frontier_dominates_random_subsets(self, seed):
        """No random n-subset beats the frontier in both cost and latency."""
        rng = np.random.default_rng(seed)
        m, n = 8, 3
        tau = rng.uniform(0.1, 2.0, m)
        costs = rng.uniform(0.5, 3.0, m)
        options = epoch_frontier(tau, costs, np.ones(m, bool), n)
        for _ in range(10):
            pick = rng.choice(m, size=n, replace=False)
            cost = costs[pick].sum()
            lat = tau[pick].max()
            dominated = any(
                opt.cost <= cost + 1e-12 and opt.latency <= lat + 1e-12
                for opt in options
            )
            assert dominated

    @given(st.integers(0, 2_000))
    @settings(max_examples=40, deadline=None)
    def test_frontier_latencies_increasing(self, seed):
        rng = np.random.default_rng(seed)
        tau = rng.uniform(0.1, 2.0, 8)
        costs = rng.uniform(0.5, 3.0, 8)
        options = epoch_frontier(tau, costs, np.ones(8, bool), 2)
        lats = [o.latency for o in options]
        assert lats == sorted(lats)


class TestCompressionProperties:
    @given(st.integers(0, 2_000), st.integers(1, 31))
    @settings(max_examples=60)
    def test_topk_bits_monotone_in_k(self, seed, k):
        rng = np.random.default_rng(seed)
        d = rng.normal(size=32)
        k = min(k, 31)
        b1 = topk_sparsify(d, k).bits
        b2 = topk_sparsify(d, k + 1).bits
        assert b2 > b1

    @given(st.integers(0, 2_000))
    @settings(max_examples=60)
    def test_quantize_idempotent_on_levels(self, seed):
        """Quantizing an already-quantized vector is lossless."""
        rng = np.random.default_rng(seed)
        d = rng.normal(size=20)
        once = uniform_quantize(d, 6).vector
        twice = uniform_quantize(once, 6).vector
        np.testing.assert_allclose(once, twice, atol=1e-10)

    @given(st.integers(0, 2_000))
    @settings(max_examples=40)
    def test_topk_preserves_kept_values_exactly(self, seed):
        rng = np.random.default_rng(seed)
        d = rng.normal(size=24)
        out = topk_sparsify(d, 8).vector
        nz = out != 0
        np.testing.assert_array_equal(out[nz], d[nz])


class TestKMeansProperties:
    @given(st.integers(0, 1_000), st.integers(2, 6))
    @settings(max_examples=30, deadline=None)
    def test_assignment_cost_beats_single_cluster(self, seed, k):
        """k-means (k >= 2) cost is no worse than putting every point in
        one cluster at the global mean — the k = 1 optimum.  (Lloyd's can
        land in a local optimum, but never one worse than merging all
        clusters, since each centroid is its members' mean.)"""
        rng = np.random.default_rng(seed)
        pts = rng.normal(size=(30, 2))
        C, assign = kmeans(pts, k, rng)
        cost = (((pts - C[assign]) ** 2).sum(-1)).sum()
        single = (((pts - pts.mean(axis=0)) ** 2).sum(-1)).sum()
        assert cost <= single + 1e-9


class TestCheckpointProperties:
    def test_round_trip_exact_many_seeds(self, tmp_path):
        for seed in range(20):
            rng = np.random.default_rng(seed)
            model = build_model("mlp", 5, 3, rng, hidden=(4,))
            w = rng.normal(size=model.num_params)
            path = tmp_path / f"m{seed}.npz"
            save_checkpoint(model, path, w=w)
            loaded, _ = load_checkpoint(path)
            np.testing.assert_array_equal(loaded, w)
