"""Checkpoint/resume contract: crash drills, bit-identity, torn writes.

The invariant under test everywhere in this file: resuming a run from a
round-granular snapshot produces results *bit-identical* to the same run
never having been interrupted — final weights byte-equal, traces equal
(modulo measured wall-time fields for the live engine).  The crash-drill
tests use :func:`repro.checkpoint.crashsmoke.run_crash_resume_smoke`,
which SIGKILLs a forked victim mid-experiment (the worst case: no atexit
sweep, possibly a torn staging dir) and recovers from whatever survived.
"""

import dataclasses
import json
import os
import signal

import numpy as np
import pytest

from repro.checkpoint import (
    CheckpointError,
    ExperimentInterrupted,
    latest_snapshot_path,
    load_snapshot,
    prepare_checkpoint_dir,
    resume_experiment,
)
from repro.checkpoint.crashsmoke import run_crash_resume_smoke
from repro.config import AttackConfig, CheckpointConfig, DefenseConfig, LiveConfig
from repro.experiments.runner import run_experiment
from repro.experiments.scenarios import experiment_config, make_policy
from repro.rng import RngFactory

SMALL = dict(budget=200.0, seed=0, num_clients=8, min_participants=2, max_epochs=12)

ENGINES = ("loop", "batched", "des", "live")


def small_config(engine="loop", **overrides):
    params = dict(SMALL)
    sections = {
        key: overrides.pop(key) for key in ("attack", "defense") if key in overrides
    }
    params.update(overrides)
    cfg = experiment_config(**params)
    if sections:
        cfg = cfg.replace(**sections)
    cfg = cfg.replace(training=dataclasses.replace(cfg.training, engine=engine))
    if engine == "live":
        cfg = cfg.replace(
            live=LiveConfig(
                workers=2, time_scale=0.01, transport="unix", round_timeout_s=30.0
            )
        )
    return cfg


def fedl(cfg):
    return make_policy("FedL", cfg, RngFactory(cfg.seed).get("cli.policy"))


class TestCrashResumeAllEngines:
    """SIGKILL at an arbitrary epoch, recover, match the uninterrupted run."""

    @pytest.mark.parametrize("engine", ENGINES)
    def test_crash_resume_bit_identical(self, engine, tmp_path):
        report = run_crash_resume_smoke(
            small_config(engine), workdir=tmp_path, interval=3, smoke_seed=0
        )
        assert report["killed_by_sigkill"], report
        assert report["final_w_equal"], report
        assert report["traces_equal"], report
        assert report["ok"]


class TestResumeUnderAttack:
    """Adversary roster, sleeper schedule, and defense state all live in
    the snapshot: a run resumed mid-attack must replay identically."""

    def attack_config(self):
        return small_config(
            budget=400.0,
            max_epochs=16,
            attack=AttackConfig(kind="sign-flip", fraction=0.25, sleeper_period=3),
            defense=DefenseConfig(aggregator="median"),
        )

    def test_crash_resume_with_sleeper_adversary(self, tmp_path):
        report = run_crash_resume_smoke(
            self.attack_config(), workdir=tmp_path, interval=3, smoke_seed=1
        )
        assert report["ok"], report

    def test_mid_run_snapshot_resumes_bit_identically(self, tmp_path):
        """No crash at all: resume from an *intermediate* snapshot of a
        completed run (keep= large so it survives pruning) and compare
        against the uninterrupted reference — including the quarantine
        column the defense EWMAs drive."""
        cfg = self.attack_config()
        reference = run_experiment(fedl(cfg), cfg)

        ckpt_dir = tmp_path / "ck"
        ckpt_cfg = cfg.replace(
            checkpoint=CheckpointConfig(directory=str(ckpt_dir), interval=4, keep=100)
        )
        run_experiment(fedl(ckpt_cfg), ckpt_cfg)
        mid = ckpt_dir / "epoch_00000008"
        assert mid.is_dir(), sorted(p.name for p in ckpt_dir.iterdir())

        resumed = resume_experiment(
            mid, checkpoint_override=CheckpointConfig(directory=None)
        )
        assert resumed.final_w.tobytes() == reference.final_w.tobytes()
        assert resumed.trace.equals(reference.trace)
        assert [r.num_quarantined for r in resumed.trace.records] == [
            r.num_quarantined for r in reference.trace.records
        ]


class TestCorruptSnapshots:
    """Any torn, missing, or tampered snapshot content is a typed
    CheckpointError (the CLI's unrecoverable exit-1), never garbage."""

    def checkpointed_run(self, tmp_path):
        ckpt_dir = tmp_path / "ck"
        cfg = small_config().replace(
            checkpoint=CheckpointConfig(directory=str(ckpt_dir), interval=4, keep=2)
        )
        run_experiment(fedl(cfg), cfg)
        return ckpt_dir

    def test_bit_flip_fails_checksum(self, tmp_path):
        ckpt_dir = self.checkpointed_run(tmp_path)
        snap = latest_snapshot_path(ckpt_dir)
        target = snap / "state.npz"
        blob = bytearray(target.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        target.write_bytes(bytes(blob))
        with pytest.raises(CheckpointError, match="checksum mismatch"):
            load_snapshot(ckpt_dir)
        with pytest.raises(CheckpointError):
            resume_experiment(ckpt_dir)

    def test_missing_payload_file(self, tmp_path):
        ckpt_dir = self.checkpointed_run(tmp_path)
        (latest_snapshot_path(ckpt_dir) / "policy.pkl").unlink()
        with pytest.raises(CheckpointError, match="missing"):
            load_snapshot(ckpt_dir)

    def test_unreadable_manifest(self, tmp_path):
        ckpt_dir = self.checkpointed_run(tmp_path)
        (latest_snapshot_path(ckpt_dir) / "manifest.json").write_text("{tor")
        with pytest.raises(CheckpointError, match="manifest"):
            load_snapshot(ckpt_dir)

    def test_empty_directory(self, tmp_path):
        with pytest.raises(CheckpointError, match="no snapshots"):
            latest_snapshot_path(tmp_path)

    def test_missing_directory(self, tmp_path):
        with pytest.raises(CheckpointError, match="no such checkpoint"):
            latest_snapshot_path(tmp_path / "nope")


class TestTornWriteHygiene:
    def test_stale_staging_litter_swept_and_resume_survives(self, tmp_path):
        """A writer SIGKILLed mid-stage leaves ``.stage_*`` dirs and
        mkstemp ``.*.tmp`` files; reopening the directory sweeps them and
        the last *committed* snapshot still resumes."""
        ckpt_dir = tmp_path / "ck"
        cfg = small_config().replace(
            checkpoint=CheckpointConfig(directory=str(ckpt_dir), interval=4, keep=2)
        )
        reference = run_experiment(fedl(cfg), cfg)

        stage = ckpt_dir / ".stage_epoch_00000099.tmp12345"
        stage.mkdir()
        (stage / "model.npz").write_bytes(b"torn")
        (ckpt_dir / ".LATEST.abc123.tmp").write_text("torn pointer")

        swept = prepare_checkpoint_dir(ckpt_dir)
        assert not stage.exists()
        assert not (ckpt_dir / ".LATEST.abc123.tmp").exists()
        assert swept == ckpt_dir

        resumed = resume_experiment(
            ckpt_dir, checkpoint_override=CheckpointConfig(directory=None)
        )
        assert resumed.final_w.tobytes() == reference.final_w.tobytes()
        assert resumed.trace.equals(reference.trace)

    def test_orphaned_commit_beats_stale_pointer(self, tmp_path):
        """Crash between ``os.replace`` of the snapshot and the LATEST
        pointer update: the newest manifest on disk wins."""
        ckpt_dir = self.run_keep_all(tmp_path)
        (ckpt_dir / "LATEST").write_text("epoch_00000004")
        snap = latest_snapshot_path(ckpt_dir)
        assert snap.name > "epoch_00000004"

    def run_keep_all(self, tmp_path):
        ckpt_dir = tmp_path / "ck"
        cfg = small_config().replace(
            checkpoint=CheckpointConfig(directory=str(ckpt_dir), interval=4, keep=100)
        )
        run_experiment(fedl(cfg), cfg)
        return ckpt_dir


class SigtermPolicy:
    """Picklable wrapper that SIGTERMs its own process at ``fire_epoch``
    (top of select — mirrors CrashingPolicy, but catchable)."""

    def __init__(self, inner, fire_epoch):
        self.inner = inner
        self.fire_epoch = fire_epoch

    def __getattr__(self, attr):
        if attr == "inner" or attr.startswith("__"):
            raise AttributeError(attr)
        return getattr(self.inner, attr)

    def select(self, ctx):
        if self.fire_epoch is not None and ctx.t >= self.fire_epoch:
            os.kill(os.getpid(), signal.SIGTERM)
            self.fire_epoch = None
        return self.inner.select(ctx)

    def update(self, feedback):
        self.inner.update(feedback)


class TestSignalFlush:
    def test_sigterm_flushes_snapshot_and_resume_matches(self, tmp_path):
        """SIGTERM mid-run → the epoch in flight completes, a final
        snapshot lands, ExperimentInterrupted carries the resume
        location, and the resumed tail is bit-identical."""
        cfg = small_config()
        reference = run_experiment(fedl(cfg), cfg)

        ckpt_dir = tmp_path / "ck"
        ckpt_cfg = cfg.replace(
            checkpoint=CheckpointConfig(directory=str(ckpt_dir), interval=3, keep=2)
        )
        fire_epoch = 7
        policy = SigtermPolicy(fedl(ckpt_cfg), fire_epoch)
        with pytest.raises(ExperimentInterrupted) as excinfo:
            run_experiment(policy, ckpt_cfg)
        err = excinfo.value
        assert err.signal_name == "SIGTERM"
        assert err.directory == str(ckpt_dir)
        assert err.next_epoch == fire_epoch + 1
        # The flush is a *snapshot*, not just the interval write: the
        # newest snapshot on disk is for the interrupted epoch boundary.
        assert latest_snapshot_path(ckpt_dir).name == f"epoch_{err.next_epoch:08d}"

        resumed = resume_experiment(
            ckpt_dir, checkpoint_override=CheckpointConfig(directory=None)
        )
        assert resumed.final_w.tobytes() == reference.final_w.tobytes()
        assert resumed.trace.equals(reference.trace)


class TestSnapshotManifest:
    def test_manifest_checksums_cover_every_payload_file(self, tmp_path):
        ckpt_dir = tmp_path / "ck"
        cfg = small_config().replace(
            checkpoint=CheckpointConfig(directory=str(ckpt_dir), interval=4, keep=2)
        )
        run_experiment(fedl(cfg), cfg)
        snap = latest_snapshot_path(ckpt_dir)
        manifest = json.loads((snap / "manifest.json").read_text())
        on_disk = {p.name for p in snap.iterdir()}
        assert set(manifest["files"]) | {"manifest.json"} >= on_disk
        assert manifest["next_epoch"] >= 1

    def test_prune_keeps_newest(self, tmp_path):
        ckpt_dir = tmp_path / "ck"
        cfg = small_config().replace(
            checkpoint=CheckpointConfig(directory=str(ckpt_dir), interval=2, keep=2)
        )
        run_experiment(fedl(cfg), cfg)
        snaps = sorted(
            p.name for p in ckpt_dir.iterdir() if p.name.startswith("epoch_")
        )
        assert len(snaps) == 2
        assert (ckpt_dir / "LATEST").read_text().strip() == snaps[-1]


class TestCliResumeContract:
    """Exit-code contract: bad arguments are usage errors (2); a
    resolvable-but-unrecoverable checkpoint is a runtime failure (1)."""

    def cli(self, argv):
        from repro.cli import main

        return main(argv)

    def test_resume_nonexistent_dir_is_usage_error(self, tmp_path):
        assert self.cli(["run", "--resume", str(tmp_path / "nope")]) == 2

    def test_bad_interval_is_usage_error(self, tmp_path):
        assert (
            self.cli(
                [
                    "run",
                    "--checkpoint-dir",
                    str(tmp_path),
                    "--checkpoint-interval",
                    "0",
                ]
            )
            == 2
        )

    def test_resume_corrupt_dir_is_runtime_error(self, tmp_path, capsys):
        bad = tmp_path / "ck"
        bad.mkdir()
        (bad / "LATEST").write_text("epoch_00000004")
        assert self.cli(["run", "--resume", str(bad)]) == 1
        assert "cannot resume" in capsys.readouterr().err
