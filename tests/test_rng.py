"""Tests for the seeded RNG factory."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.rng import RngFactory, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "a") == derive_seed(42, "a")

    def test_distinct_keys_distinct_seeds(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_distinct_seeds_distinct_outputs(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_fits_uint64(self):
        s = derive_seed(2**31, "x" * 100)
        assert 0 <= s < 2**64

    @given(st.integers(min_value=0, max_value=2**32), st.text(max_size=30))
    def test_always_valid_seed(self, seed, key):
        s = derive_seed(seed, key)
        np.random.default_rng(s)  # must not raise


class TestRngFactory:
    def test_same_key_same_object(self):
        f = RngFactory(0)
        assert f.get("a") is f.get("a")

    def test_different_keys_independent_streams(self):
        f = RngFactory(0)
        a = f.get("a").random(100)
        b = f.get("b").random(100)
        assert not np.allclose(a, b)

    def test_reproducible_across_factories(self):
        x = RngFactory(7).get("k").random(10)
        y = RngFactory(7).get("k").random(10)
        np.testing.assert_array_equal(x, y)

    def test_consume_order_does_not_matter(self):
        f1 = RngFactory(5)
        f1.get("other").random(50)  # consume an unrelated stream
        a = f1.get("target").random(10)
        f2 = RngFactory(5)
        b = f2.get("target").random(10)
        np.testing.assert_array_equal(a, b)

    def test_fresh_resets_stream(self):
        f = RngFactory(3)
        first = f.get("s").random(5)
        f.fresh("s")
        second = f.get("s").random(5)
        np.testing.assert_array_equal(first, second)

    def test_child_independent(self):
        f = RngFactory(9)
        a = f.get("x").random(20)
        b = f.child("sub").get("x").random(20)
        assert not np.allclose(a, b)

    def test_child_deterministic(self):
        a = RngFactory(9).child("sub").get("x").random(5)
        b = RngFactory(9).child("sub").get("x").random(5)
        np.testing.assert_array_equal(a, b)
