"""Tests for the seeded RNG factory."""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rng import RngFactory, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "a") == derive_seed(42, "a")

    def test_distinct_keys_distinct_seeds(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_distinct_seeds_distinct_outputs(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_fits_uint64(self):
        s = derive_seed(2**31, "x" * 100)
        assert 0 <= s < 2**64

    @given(st.integers(min_value=0, max_value=2**32), st.text(max_size=30))
    def test_always_valid_seed(self, seed, key):
        s = derive_seed(seed, key)
        np.random.default_rng(s)  # must not raise


class TestRngFactory:
    def test_same_key_same_object(self):
        f = RngFactory(0)
        assert f.get("a") is f.get("a")

    def test_different_keys_independent_streams(self):
        f = RngFactory(0)
        a = f.get("a").random(100)
        b = f.get("b").random(100)
        assert not np.allclose(a, b)

    def test_reproducible_across_factories(self):
        x = RngFactory(7).get("k").random(10)
        y = RngFactory(7).get("k").random(10)
        np.testing.assert_array_equal(x, y)

    def test_consume_order_does_not_matter(self):
        f1 = RngFactory(5)
        f1.get("other").random(50)  # consume an unrelated stream
        a = f1.get("target").random(10)
        f2 = RngFactory(5)
        b = f2.get("target").random(10)
        np.testing.assert_array_equal(a, b)

    def test_fresh_resets_stream(self):
        f = RngFactory(3)
        first = f.get("s").random(5)
        f.fresh("s")
        second = f.get("s").random(5)
        np.testing.assert_array_equal(first, second)

    def test_child_independent(self):
        f = RngFactory(9)
        a = f.get("x").random(20)
        b = f.child("sub").get("x").random(20)
        assert not np.allclose(a, b)

    def test_child_deterministic(self):
        a = RngFactory(9).child("sub").get("x").random(5)
        b = RngFactory(9).child("sub").get("x").random(5)
        np.testing.assert_array_equal(a, b)


class TestStateRoundTrip:
    """state_dict/load_state: the checkpointing contract for RNG streams."""

    def test_state_dict_is_json_safe(self):
        factory = RngFactory(3)
        factory.get("a").random(7)
        factory.get("fl.client.2").integers(0, 9, size=5)
        wire = json.loads(json.dumps(factory.state_dict()))
        assert set(wire) == {"a", "fl.client.2"}

    def test_loaded_factory_continues_bit_identically(self):
        src = RngFactory(11)
        src.get("x").random(100)
        states = src.state_dict()
        expected = src.get("x").random(16)
        dst = RngFactory(11)
        dst.load_state(states)
        np.testing.assert_array_equal(dst.get("x").random(16), expected)

    def test_uncaptured_streams_recreate_from_seed(self):
        src = RngFactory(5)
        src.get("seen").random(3)
        dst = RngFactory(5)
        dst.load_state(src.state_dict())
        np.testing.assert_array_equal(
            dst.get("never_drawn").random(4),
            RngFactory(5).get("never_drawn").random(4),
        )

    def test_load_state_does_not_alias_caller_dict(self):
        src = RngFactory(7)
        src.get("k").random(9)
        states = src.state_dict()
        dst = RngFactory(7)
        dst.load_state(states)
        expected = dst.get("k").random(8)
        # Mutating the caller's dict after load must not reach the stream.
        states["k"]["state"]["state"] = 0
        again = RngFactory(7)
        again.load_state(src.state_dict())
        np.testing.assert_array_equal(again.get("k").random(8), expected)

    @given(
        seed=st.integers(0, 2**32 - 1),
        plan=st.dictionaries(
            st.sampled_from(["a", "b", "fl.client.3", "policy.FedL", "env"]),
            st.integers(0, 64),
            min_size=1,
            max_size=5,
        ),
    )
    @settings(max_examples=40, deadline=None)
    def test_round_trip_property(self, seed, plan):
        """After any draw pattern, a JSON-serialized capture restored into
        a fresh factory continues every stream bit-identically."""
        src = RngFactory(seed)
        for key, n in plan.items():
            src.get(key).random(n)
        wire = json.loads(json.dumps(src.state_dict()))
        expected = {key: src.get(key).random(8) for key in plan}
        dst = RngFactory(seed)
        dst.load_state(wire)
        for key in plan:
            np.testing.assert_array_equal(dst.get(key).random(8), expected[key])
