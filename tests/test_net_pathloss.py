"""Tests for path loss and unit conversions against hand calculations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.pathloss import (
    db_to_linear,
    dbm_to_watt,
    linear_to_db,
    pathloss_db,
    watt_to_dbm,
)


class TestPathloss:
    def test_one_km_reference(self):
        # At d = 1 km the log term vanishes: PL = 128.1 dB exactly.
        assert pathloss_db(1000.0) == pytest.approx(128.1)

    def test_slope_per_decade(self):
        # One decade of distance adds exactly 37.6 dB.
        assert pathloss_db(1000.0) - pathloss_db(100.0) == pytest.approx(37.6)

    def test_hand_computed_value(self):
        # d = 500 m: 128.1 + 37.6·log10(0.5) = 128.1 − 11.318... dB
        expected = 128.1 + 37.6 * np.log10(0.5)
        assert pathloss_db(500.0) == pytest.approx(expected)

    def test_vectorized(self):
        d = np.array([100.0, 1000.0])
        out = pathloss_db(d)
        assert out.shape == (2,)
        assert out[1] - out[0] == pytest.approx(37.6)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            pathloss_db(0.0)

    @given(st.floats(1.0, 5000.0))
    @settings(max_examples=40)
    def test_monotone_in_distance(self, d):
        assert pathloss_db(d + 1.0) > pathloss_db(d)


class TestConversions:
    def test_dbm_to_watt_reference_points(self):
        assert dbm_to_watt(0.0) == pytest.approx(1e-3)     # 0 dBm = 1 mW
        assert dbm_to_watt(30.0) == pytest.approx(1.0)     # 30 dBm = 1 W
        assert dbm_to_watt(10.0) == pytest.approx(1e-2)    # 10 dBm = 10 mW

    def test_db_linear_round_trip(self):
        for db in (-20.0, 0.0, 13.0):
            assert linear_to_db(db_to_linear(db)) == pytest.approx(db)

    def test_watt_dbm_round_trip(self):
        for w in (1e-6, 1e-3, 2.5):
            assert dbm_to_watt(watt_to_dbm(w)) == pytest.approx(w)

    def test_noise_psd_at_minus_174(self):
        # kT at 290K ≈ 4e-21 W/Hz = -174 dBm/Hz (the paper's N0).
        assert dbm_to_watt(-174.0) == pytest.approx(3.98e-21, rel=1e-2)

    def test_rejects_nonpositive_linear(self):
        with pytest.raises(ValueError):
            linear_to_db(0.0)
        with pytest.raises(ValueError):
            watt_to_dbm(-1.0)
