"""Property tests for the sharded selection path (PR 8).

Covers the contracts promised in ``repro.fl.shard``:

* single-shard ``ShardedFedLPolicy`` is bit-identical to the flat
  ``FedLPolicy`` over a full experiment, on both closed-form engines;
* hierarchical ``shard_combine`` equals the flat weighted average;
* ``decompose_budget`` / ``decompose_floor`` never overshoot and
  redistribute deterministically;
* ``ClientStateArrays`` updates reproduce the legacy runner formulas;
* ``step_into`` / ``sample_into`` are bit-identical to their
  allocating counterparts.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.config import ShardConfig
from repro.core.fedl import FedLPolicy
from repro.env.dynamics import DataVolumeProcess, PriceProcess
from repro.env.state import ClientStateArrays
from repro.experiments.runner import run_experiment
from repro.experiments.scenarios import experiment_config
from repro.fl.hierarchy import shard_combine
from repro.fl.shard import (
    ShardedFedLPolicy,
    build_shard_plan,
    decompose_budget,
    decompose_floor,
)


def scaled_config(num_shards=1, engine="auto", **kwargs):
    defaults = dict(budget=200.0, num_clients=24, min_participants=4, max_epochs=8)
    defaults.update(kwargs)
    cfg = experiment_config(**defaults)
    cfg = cfg.replace(training=replace(cfg.training, engine=engine))
    return cfg.replace(shard=replace(cfg.shard, num_shards=num_shards))


def fedl_pair(cfg, num_shards):
    """A flat policy and a sharded one, constructed with the registry's
    exact arguments and identically-seeded generators."""
    def build(sharded):
        rng = np.random.default_rng(99)
        common = dict(
            num_clients=cfg.population.num_clients,
            budget=cfg.budget,
            min_participants=cfg.min_participants,
            theta=cfg.training.theta,
            rng=rng,
            config=cfg.fedl,
            cost_range=cfg.population.cost_range,
        )
        if sharded:
            return ShardedFedLPolicy(
                **common, shard=ShardConfig(num_shards=num_shards)
            )
        return FedLPolicy(**common)

    return build(False), build(True)


class TestShardPlan:
    def test_contiguous_partitions_ids(self):
        plan = build_shard_plan(101, 7)
        assert plan.num_shards == 7
        all_ids = np.sort(np.concatenate(plan.members))
        np.testing.assert_array_equal(all_ids, np.arange(101))
        for s, m in enumerate(plan.members):
            np.testing.assert_array_equal(plan.shard_of[m], s)

    def test_contiguous_near_equal_sizes(self):
        plan = build_shard_plan(100, 6)
        sizes = [m.size for m in plan.members]
        assert max(sizes) - min(sizes) <= 1

    def test_kmeans_partitions_ids(self, rng):
        pos = rng.normal(size=(60, 2))
        plan = build_shard_plan(60, 4, "kmeans", positions=pos, rng=rng)
        all_ids = np.sort(np.concatenate(plan.members))
        np.testing.assert_array_equal(all_ids, np.arange(60))
        for s, m in enumerate(plan.members):
            np.testing.assert_array_equal(plan.shard_of[m], s)

    def test_kmeans_deterministic_and_covers_population(self):
        # The shard geometry study (examples/shard_geometry_study.py)
        # relies on kmeans plans being a pure function of (positions,
        # seed) and a true partition of the real population layout.
        from repro.config import PopulationConfig
        from repro.env import build_population
        from repro.rng import RngFactory

        pop = build_population(
            PopulationConfig(num_clients=50), RngFactory(23).get("pop")
        )
        plans = [
            build_shard_plan(
                50, 5, "kmeans",
                positions=pop.positions_m,
                rng=np.random.default_rng(7),
            )
            for _ in range(2)
        ]
        np.testing.assert_array_equal(plans[0].shard_of, plans[1].shard_of)
        for a, b in zip(plans[0].members, plans[1].members):
            np.testing.assert_array_equal(a, b)
        covered = np.sort(np.concatenate(plans[0].members))
        np.testing.assert_array_equal(covered, np.arange(50))
        assert all(m.size > 0 for m in plans[0].members)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            build_shard_plan(10, 0)
        with pytest.raises(ValueError):
            build_shard_plan(10, 11)
        with pytest.raises(ValueError):
            build_shard_plan(10, 2, "kmeans")  # missing positions/rng
        with pytest.raises(ValueError):
            build_shard_plan(10, 2, "mystery")


class TestDecomposeBudget:
    def test_fuzz_never_overshoots(self, rng):
        for _ in range(200):
            s = int(rng.integers(1, 12))
            masses = rng.uniform(0, 5, s)
            demands = rng.uniform(0, 50, s)
            total = float(rng.uniform(0, 120))
            alloc = decompose_budget(total, masses, demands)
            assert alloc.sum() <= total + 1e-9
            assert np.all(alloc <= demands + 1e-9)
            assert np.all(alloc >= 0)

    def test_slack_redistributed_to_unsaturated(self):
        # Shard 0 caps out at 1; its slack must flow to shard 1.
        alloc = decompose_budget(10.0, np.array([1.0, 1.0]), np.array([1.0, 20.0]))
        np.testing.assert_allclose(alloc, [1.0, 9.0])

    def test_exhausts_pool_when_demand_suffices(self, rng):
        for _ in range(50):
            s = int(rng.integers(1, 8))
            masses = rng.uniform(0.1, 5, s)
            demands = rng.uniform(0, 30, s)
            total = float(rng.uniform(0, demands.sum()))
            alloc = decompose_budget(total, masses, demands)
            np.testing.assert_allclose(alloc.sum(), min(total, demands.sum()), atol=1e-8)

    def test_deterministic(self, rng):
        masses = rng.uniform(0, 3, 9)
        demands = rng.uniform(0, 20, 9)
        a = decompose_budget(42.0, masses, demands)
        b = decompose_budget(42.0, masses, demands)
        np.testing.assert_array_equal(a, b)

    def test_zero_mass_splits_evenly(self):
        alloc = decompose_budget(6.0, np.zeros(3), np.full(3, 10.0))
        np.testing.assert_allclose(alloc, [2.0, 2.0, 2.0])


class TestDecomposeFloor:
    def test_fuzz_sums_and_caps(self, rng):
        for _ in range(200):
            s = int(rng.integers(1, 10))
            caps = rng.integers(0, 20, s)
            if caps.sum() == 0:
                caps[0] = 1
            n = int(rng.integers(0, 30))
            floors = decompose_floor(n, caps, offset=int(rng.integers(0, 100)))
            assert floors.sum() == min(n, caps.sum())
            assert np.all(floors <= caps)
            assert np.all(floors >= 0)

    def test_rotation_covers_all_shards(self):
        # n < S with equal caps: the single quota must circulate so no
        # shard is starved forever.
        hits = np.zeros(4, dtype=int)
        caps = np.full(4, 5)
        for t in range(8):
            hits += decompose_floor(1, caps, offset=t)
        assert np.all(hits > 0)

    def test_deterministic(self):
        caps = np.array([3, 7, 2, 9])
        a = decompose_floor(5, caps, offset=3)
        b = decompose_floor(5, caps, offset=3)
        np.testing.assert_array_equal(a, b)


class TestShardCombine:
    def test_equals_flat_weighted_average(self, rng):
        for _ in range(30):
            n = int(rng.integers(1, 40))
            d = int(rng.integers(1, 50))
            num_shards = int(rng.integers(1, 8))
            updates = [rng.normal(size=d) for _ in range(n)]
            weights = rng.uniform(0.1, 10, n)
            labels = rng.integers(0, num_shards, n)
            combined = shard_combine(updates, weights, labels, num_shards)
            flat = np.average(np.stack(updates), axis=0, weights=weights)
            np.testing.assert_allclose(combined, flat, rtol=1e-10, atol=1e-12)


class TestSingleShardIdentity:
    """num_shards=1 must be the flat path, bit for bit."""

    @pytest.mark.parametrize("engine", ["loop", "batched"])
    def test_full_run_bit_identical(self, engine):
        cfg = scaled_config(num_shards=1, engine=engine)
        flat, sharded = fedl_pair(cfg, num_shards=1)
        r_flat = run_experiment(flat, cfg)
        r_shard = run_experiment(sharded, cfg)
        assert r_flat.trace.equals(r_shard.trace)
        np.testing.assert_array_equal(r_flat.final_w, r_shard.final_w)

    def test_delegates_wholesale(self):
        cfg = scaled_config(num_shards=1)
        _, sharded = fedl_pair(cfg, num_shards=1)
        assert sharded._flat is not None
        assert sharded.plan.num_shards == 1


class TestShardedRun:
    """S > 1 exercises budget decomposition + hierarchical aggregation."""

    def test_run_completes_and_respects_budget(self):
        cfg = scaled_config(num_shards=3)
        _, sharded = fedl_pair(cfg, num_shards=3)
        result = run_experiment(sharded, cfg)
        tr = result.trace
        assert tr.total_spend <= cfg.budget + 1e-6
        assert np.all(tr.column("num_selected") >= 1)
        assert np.all(np.isfinite(result.final_w))

    def test_engines_agree(self):
        results = []
        for engine in ("loop", "batched"):
            cfg = scaled_config(num_shards=3, engine=engine)
            _, sharded = fedl_pair(cfg, num_shards=3)
            results.append(run_experiment(sharded, cfg))
        assert results[0].trace.equals(results[1].trace)
        np.testing.assert_array_equal(results[0].final_w, results[1].final_w)

    def test_deterministic_across_runs(self):
        runs = []
        for _ in range(2):
            cfg = scaled_config(num_shards=4)
            _, sharded = fedl_pair(cfg, num_shards=4)
            runs.append(run_experiment(sharded, cfg))
        assert runs[0].trace.equals(runs[1].trace)


class TestClientStateArrays:
    """Flat state updates == the legacy per-epoch formulas."""

    def test_trajectory_matches_legacy(self, rng):
        k, epochs, ema = 40, 25, 0.5
        state = ClientStateArrays(k, tau_prior=1.0)
        tau_legacy = np.full(k, 1.0)
        loss_legacy = np.full(k, np.nan)
        rel_legacy = np.ones(k)
        for _ in range(epochs):
            avail = rng.random(k) < 0.8
            tau_real = rng.uniform(0.1, 3.0, k)
            new_losses = np.where(rng.random(k) < 0.5, rng.uniform(0, 2, k), np.nan)
            contributors = avail & (rng.random(k) < 0.6)
            clean = rng.random(k) < 0.9

            state.observe_latency(tau_real, avail)
            state.observe_losses(new_losses)
            state.observe_reliability(contributors, clean, ema)

            tau_legacy = np.where(avail, tau_real, tau_legacy)
            loss_legacy = np.where(np.isnan(new_losses), loss_legacy, new_losses)
            rel_legacy[contributors] = (
                (1.0 - ema) * rel_legacy[contributors] + ema * clean[contributors]
            )

            np.testing.assert_array_equal(state.tau_last, tau_legacy)
            np.testing.assert_array_equal(state.local_losses, loss_legacy)
            np.testing.assert_array_equal(state.reliability, rel_legacy)

    def test_charge_accumulates(self, rng):
        state = ClientStateArrays(10)
        total_sel = np.zeros(10, dtype=np.int64)
        total_spend = np.zeros(10)
        for _ in range(5):
            sel = rng.random(10) < 0.4
            costs = rng.uniform(0.1, 5, 10)
            state.charge(sel, costs)
            total_sel[sel] += 1
            total_spend[sel] += costs[sel]
        np.testing.assert_array_equal(state.cum_selected, total_sel)
        np.testing.assert_array_equal(state.spend, total_spend)

    def test_begin_epoch_belief_inflation(self, rng):
        state = ClientStateArrays(12)
        state.reliability[:] = rng.uniform(0, 1, 12)
        costs = rng.uniform(0.1, 5, 12)
        avail = rng.random(12) < 0.5
        state.begin_epoch(avail, costs, reliability_penalty=2.0, track_reliability=True)
        expected = costs * (1.0 + 2.0 * (1.0 - state.reliability))
        np.testing.assert_allclose(state.belief_costs, expected)
        # Without tracking, belief == realized.
        state.begin_epoch(avail, costs)
        np.testing.assert_array_equal(state.belief_costs, costs)


class TestInPlaceDynamics:
    """``step_into`` / ``sample_into`` == allocating ``step`` / ``sample``."""

    def test_price_step_into_bit_identical(self):
        base = np.random.default_rng(3).uniform(0.5, 8.0, 30)
        a = PriceProcess(base, rng=np.random.default_rng(7))
        b = PriceProcess(base, rng=np.random.default_rng(7))
        out = np.empty(30)
        for _ in range(20):
            np.testing.assert_array_equal(a.step(), b.step_into(out))

    def test_volume_sample_into_bit_identical(self):
        a = DataVolumeProcess(30, 40.0, rng=np.random.default_rng(11))
        b = DataVolumeProcess(30, 40.0, rng=np.random.default_rng(11))
        out = np.empty(30, dtype=np.int64)
        for _ in range(20):
            np.testing.assert_array_equal(a.sample(), b.sample_into(out))
