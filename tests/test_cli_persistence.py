"""Tests for the CLI and trace persistence."""

import json

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.experiments.metrics import EpochRecord, Trace
from repro.experiments.persistence import (
    load_traces,
    save_traces,
    trace_from_dict,
    trace_to_dict,
)


def make_trace(name="X", epochs=3):
    tr = Trace(policy_name=name)
    for i in range(epochs):
        tr.append(
            EpochRecord(
                t=i,
                test_accuracy=0.1 * (i + 1),
                test_loss=2.0 - 0.1 * i,
                population_loss=2.0 - 0.1 * i,
                epoch_latency=0.5,
                cumulative_time=0.5 * (i + 1),
                cost_spent=10.0,
                remaining_budget=100.0 - 10.0 * (i + 1),
                num_selected=4,
                num_available=9,
                iterations=2,
                rho=2.2,
                eta_max=0.5,
            )
        )
    return tr


class TestPersistence:
    def test_round_trip_dict(self):
        tr = make_trace()
        back = trace_from_dict(trace_to_dict(tr))
        assert back.policy_name == tr.policy_name
        np.testing.assert_array_equal(back.accuracy, tr.accuracy)
        np.testing.assert_array_equal(back.times, tr.times)

    def test_round_trip_file(self, tmp_path):
        traces = {"A": make_trace("A"), "B": make_trace("B", epochs=5)}
        path = save_traces(traces, tmp_path / "out.json")
        loaded = load_traces(path)
        assert set(loaded) == {"A", "B"}
        assert len(loaded["B"]) == 5

    def test_file_is_valid_json(self, tmp_path):
        path = save_traces({"A": make_trace()}, tmp_path / "x.json")
        json.loads(path.read_text())  # must not raise

    def test_schema_version_checked(self, tmp_path):
        with pytest.raises(ValueError):
            trace_from_dict({"schema": 99, "policy_name": "A", "records": []})
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": 99, "traces": {}}))
        with pytest.raises(ValueError):
            load_traces(path)


class TestCliParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.policy == "FedL"
        assert args.dataset == "fmnist"

    def test_rejects_unknown_policy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--policy", "Magic"])

    def test_sweep_budgets(self):
        args = build_parser().parse_args(["sweep", "--budgets", "100", "200"])
        assert args.budgets == [100.0, 200.0]


class TestCliExecution:
    def test_run_command(self, capsys, tmp_path):
        rc = main(
            [
                "run",
                "--policy", "FedAvg",
                "--budget", "100",
                "--clients", "8",
                "--participants", "3",
                "--epochs", "4",
                "--save", str(tmp_path / "run.json"),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "final_accuracy=" in out
        assert (tmp_path / "run.json").exists()
        loaded = load_traces(tmp_path / "run.json")
        assert "FedAvg" in loaded

    def test_compare_command(self, capsys):
        rc = main(
            [
                "compare",
                "--budget", "100",
                "--clients", "8",
                "--participants", "3",
                "--epochs", "3",
                "--target", "0.1",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "FedL" in out and "FedAvg" in out
        assert "completion-time saving" in out

    def test_regret_command(self, capsys):
        rc = main(["regret", "--horizons", "10", "15"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Reg_d" in out
        # two horizon rows printed
        assert len([l for l in out.splitlines() if l.strip().startswith(("10", "15"))]) == 2
