"""Property-based tests for RDCS (paper Alg. 2 / Theorem 3 guarantees)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.rounding import independent_round, rdcs_round

fractions = hnp.arrays(
    np.float64,
    st.integers(min_value=1, max_value=15),
    elements=st.floats(0.0, 1.0, allow_nan=False),
)


class TestRdcsInvariants:
    @given(fractions, st.integers(0, 2**32 - 1))
    @settings(max_examples=200)
    def test_output_is_binary(self, x, seed):
        out = rdcs_round(x, np.random.default_rng(seed))
        assert np.all((out == 0.0) | (out == 1.0))

    @given(fractions, st.integers(0, 2**32 - 1))
    @settings(max_examples=200)
    def test_sum_in_floor_ceil(self, x, seed):
        out = rdcs_round(x, np.random.default_rng(seed))
        total = x.sum()
        assert np.floor(total) - 1e-9 <= out.sum() <= np.ceil(total) + 1e-9

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=50)
    def test_integer_sum_preserved_exactly(self, seed):
        rng = np.random.default_rng(seed)
        # Construct fractions with an exactly integral sum.
        x = rng.uniform(0.05, 0.95, size=6)
        x = x / x.sum() * 3.0
        x = np.clip(x, 0.0, 1.0)
        if not np.isclose(x.sum(), 3.0):
            return  # clipping broke the construction; skip this draw
        out = rdcs_round(x, rng)
        assert out.sum() == pytest.approx(3.0)

    def test_integral_input_unchanged(self, rng):
        x = np.array([0.0, 1.0, 1.0, 0.0])
        np.testing.assert_array_equal(rdcs_round(x, rng), x)

    def test_rejects_out_of_range(self, rng):
        with pytest.raises(ValueError):
            rdcs_round(np.array([1.5]), rng)
        with pytest.raises(ValueError):
            rdcs_round(np.array([[0.5]]), rng)

    def test_theorem3_marginals(self):
        """E[x_k] = x̃_k — the headline RDCS guarantee (Theorem 3)."""
        x = np.array([0.15, 0.5, 0.85, 0.3, 0.7])
        trials = 20_000
        rng = np.random.default_rng(7)
        acc = np.zeros_like(x)
        for _ in range(trials):
            acc += rdcs_round(x, rng)
        emp = acc / trials
        # 3.5-sigma confidence band for each Bernoulli marginal.
        sigma = np.sqrt(x * (1 - x) / trials)
        assert np.all(np.abs(emp - x) < 3.5 * sigma + 1e-3)

    def test_sum_constant_through_pairings(self):
        """For non-integral totals, realized sum ∈ {floor, ceil} with the
        right probability (mean of sums = fractional total)."""
        x = np.array([0.3, 0.3, 0.3])  # total 0.9
        rng = np.random.default_rng(3)
        sums = [rdcs_round(x, rng).sum() for _ in range(5000)]
        assert set(np.unique(sums)).issubset({0.0, 1.0})
        assert np.mean(sums) == pytest.approx(0.9, abs=0.03)


class TestIndependentRound:
    @given(fractions, st.integers(0, 2**32 - 1))
    @settings(max_examples=100)
    def test_output_is_binary(self, x, seed):
        out = independent_round(x, np.random.default_rng(seed))
        assert np.all((out == 0.0) | (out == 1.0))

    def test_marginals(self):
        x = np.array([0.2, 0.8])
        rng = np.random.default_rng(11)
        acc = sum(independent_round(x, rng) for _ in range(20_000))
        np.testing.assert_allclose(acc / 20_000, x, atol=0.02)

    def test_rejects_out_of_range(self, rng):
        with pytest.raises(ValueError):
            independent_round(np.array([-0.5]), rng)

    def test_sum_variance_larger_than_rdcs(self):
        """The motivating property: RDCS concentrates the selection count,
        independent rounding does not."""
        x = np.full(10, 0.5)
        rng = np.random.default_rng(21)
        rd = np.array([rdcs_round(x, rng).sum() for _ in range(2000)])
        ind = np.array([independent_round(x, rng).sum() for _ in range(2000)])
        assert rd.std() < 0.1          # sum exactly 5 every time
        assert ind.std() > 1.0         # binomial(10, .5) spread
