"""Tests for communication-efficient uploads (top-k, quantization, CMFL)."""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.runner import run_experiment
from repro.experiments.scenarios import experiment_config, make_policy
from repro.fl.compression import (
    FLOAT_BITS,
    CompressionSpec,
    cmfl_relevance,
    compress_update,
    topk_sparsify,
    uniform_quantize,
)
from repro.rng import RngFactory


class TestTopK:
    def test_keeps_largest_magnitudes(self):
        d = np.array([0.1, -5.0, 0.3, 2.0])
        out = topk_sparsify(d, k=2)
        np.testing.assert_array_equal(out.vector, [0.0, -5.0, 0.0, 2.0])

    def test_bits_accounting(self):
        d = np.zeros(1024)
        d[:10] = 1.0
        out = topk_sparsify(d, k=10)
        assert out.bits == 10 * (FLOAT_BITS + 10)  # log2(1024) = 10 index bits

    def test_full_k_lossless(self, rng):
        d = rng.normal(size=16)
        out = topk_sparsify(d, k=16)
        np.testing.assert_array_equal(out.vector, d)

    def test_validation(self):
        with pytest.raises(ValueError):
            topk_sparsify(np.ones(4), k=0)
        with pytest.raises(ValueError):
            topk_sparsify(np.ones(4), k=5)

    @given(st.integers(0, 1000), st.integers(1, 30))
    @settings(max_examples=40)
    def test_error_bounded_by_dropped_mass(self, seed, k):
        rng = np.random.default_rng(seed)
        d = rng.normal(size=32)
        k = min(k, 32)
        out = topk_sparsify(d, k)
        err = np.abs(d - out.vector)
        kept_min = np.min(np.abs(out.vector[out.vector != 0])) if k < 32 else np.inf
        # Every dropped coordinate is no larger than every kept one.
        assert np.all(err <= kept_min + 1e-12)


class TestQuantize:
    def test_error_within_half_step(self, rng):
        d = rng.normal(size=100)
        bits = 6
        out = uniform_quantize(d, bits)
        scale = np.abs(d).max()
        step = 2 * scale / (2**bits - 1)
        assert np.max(np.abs(out.vector - d)) <= step / 2 + 1e-12

    def test_bits_accounting(self):
        out = uniform_quantize(np.ones(100), bits=8)
        assert out.bits == 100 * 8 + FLOAT_BITS

    def test_more_bits_less_error(self, rng):
        d = rng.normal(size=200)
        e2 = np.abs(uniform_quantize(d, 2).vector - d).max()
        e8 = np.abs(uniform_quantize(d, 8).vector - d).max()
        assert e8 < e2

    def test_zero_vector(self):
        out = uniform_quantize(np.zeros(10), 4)
        np.testing.assert_array_equal(out.vector, 0.0)
        assert out.bits == FLOAT_BITS

    def test_validation(self):
        with pytest.raises(ValueError):
            uniform_quantize(np.ones(3), 0)
        with pytest.raises(ValueError):
            uniform_quantize(np.ones(3), 33)


class TestCmfl:
    def test_full_agreement(self):
        d = np.array([1.0, -2.0, 3.0])
        assert cmfl_relevance(d, d) == 1.0

    def test_full_disagreement(self):
        d = np.array([1.0, -2.0, 3.0])
        assert cmfl_relevance(d, -d) == 0.0

    def test_zeros_count_as_agreeing(self):
        assert cmfl_relevance(np.zeros(4), np.ones(4)) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            cmfl_relevance(np.ones(3), np.ones(2))
        with pytest.raises(ValueError):
            cmfl_relevance(np.ones(0), np.ones(0))

    def test_suppression_below_threshold(self, rng):
        d = rng.normal(size=50)
        out = compress_update(d, "cmfl", global_direction=-d, cmfl_threshold=0.5)
        assert not out.kept
        assert out.bits == 1.0
        np.testing.assert_array_equal(out.vector, 0.0)

    def test_kept_above_threshold(self, rng):
        d = rng.normal(size=50)
        out = compress_update(d, "cmfl", global_direction=d, cmfl_threshold=0.5)
        assert out.kept
        np.testing.assert_array_equal(out.vector, d)

    def test_no_reference_passes_through(self, rng):
        d = rng.normal(size=10)
        out = compress_update(d, "cmfl", global_direction=None)
        assert out.kept


class TestCompressionSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            CompressionSpec(scheme="dct")
        with pytest.raises(ValueError):
            CompressionSpec(topk_fraction=0.0)
        with pytest.raises(ValueError):
            CompressionSpec(quantize_bits=0)
        with pytest.raises(ValueError):
            CompressionSpec(cmfl_threshold=1.5)

    def test_compress_update_unknown_scheme(self, rng):
        with pytest.raises(ValueError):
            compress_update(rng.normal(size=5), "dct")


class TestEndToEnd:
    @pytest.mark.parametrize("scheme", ["topk", "quantize", "cmfl"])
    def test_experiment_learns_under_compression(self, scheme):
        cfg = experiment_config(budget=200.0, num_clients=10, max_epochs=10)
        cfg = cfg.replace(
            training=dataclasses.replace(cfg.training, compression=scheme)
        )
        pol = make_policy("FedAvg", cfg, RngFactory(0).get("p"))
        res = run_experiment(pol, cfg)
        assert res.trace.final_accuracy > res.trace.accuracy[0]

    def test_topk_reduces_simulated_time(self):
        """Compressed uploads shrink τ_cm, so the same epochs take less
        simulated wall clock in a communication-bound setting."""
        times = {}
        for scheme in ("none", "topk"):
            cfg = experiment_config(budget=200.0, num_clients=10, max_epochs=8)
            cfg = cfg.replace(
                training=dataclasses.replace(
                    cfg.training, compression=scheme, topk_fraction=0.05
                )
            )
            pol = make_policy("FedAvg", cfg, RngFactory(1).get(f"p{scheme}"))
            res = run_experiment(pol, cfg)
            horizon = min(8, len(res.trace))
            times[scheme] = float(res.trace.times[horizon - 1])
        assert times["topk"] < times["none"]

    def test_config_validation(self):
        from repro.config import TrainingConfig

        with pytest.raises(ValueError):
            TrainingConfig(compression="dct")
        with pytest.raises(ValueError):
            TrainingConfig(topk_fraction=2.0)
