"""Bit-identity of the batched client engine against the loop reference.

The batched engine's contract is *exact* equality, not approximate: every
GEMM sees the same shapes the per-client path would (equal-length
sub-batching), so swapping ``engine="loop"`` for ``engine="batched"``
must reproduce the same bytes — weights, traces, losses — across every
environment variant (IID, non-IID, crash injection, Markov availability).
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.datasets.synthetic import ClassConditionalGenerator
from repro.experiments.runner import run_experiment
from repro.experiments.scenarios import experiment_config, make_policy
from repro.fl.batched import BatchedClientEngine, batched_local_losses
from repro.fl.client import FLClient
from repro.fl.round_runner import run_federated_round
from repro.fl.server import FLServer
from repro.nn.models import build_model
from repro.rng import RngFactory


def tiny_config(variant="plain", seed=0, engine="loop"):
    cfg = experiment_config(
        dataset="fmnist",
        iid=variant != "noniid",
        budget=120.0,
        seed=seed,
        num_clients=8,
        min_participants=3,
        max_epochs=4,
    )
    if variant == "failures":
        cfg = cfg.replace(population=replace(cfg.population, failure_prob=0.3))
    elif variant == "markov":
        cfg = cfg.replace(
            population=replace(cfg.population, availability_model="markov")
        )
    return cfg.replace(training=replace(cfg.training, engine=engine))


def run_with_engine(variant, engine, policy="FedL", seed=0):
    cfg = tiny_config(variant=variant, seed=seed, engine=engine)
    pol = make_policy(policy, cfg, RngFactory(seed).get(f"policy.{policy}"))
    return run_experiment(pol, cfg)


def same_outputs(a, b):
    """Bitwise output equality (configs differ only in the engine field)."""
    return (
        a.stop_reason == b.stop_reason
        and bool(a.trace.equals(b.trace))
        and bool(np.array_equal(a.final_w, b.final_w))
    )


class TestExperimentBitIdentity:
    @pytest.mark.parametrize("variant", ["plain", "noniid", "failures", "markov"])
    def test_batched_matches_loop(self, variant):
        loop = run_with_engine(variant, "loop")
        batched = run_with_engine(variant, "batched")
        assert len(loop.trace) > 0
        assert same_outputs(loop, batched)

    def test_auto_engine_matches_loop(self):
        loop = run_with_engine("plain", "loop")
        auto = run_with_engine("plain", "auto")
        assert same_outputs(loop, auto)


def fresh_setup(seed=777):
    """Model + ragged-data clients + server, fully determined by ``seed``.

    Built from scratch per call so the loop and batched arms see identical
    RNG states (clients consume their stream when subsampling batches).
    Datasets are ragged on purpose: equal-length sub-batching is the part
    of the engine that has to earn its exactness.
    """
    factory = RngFactory(seed)
    gen = ClassConditionalGenerator((6, 6, 1), 4, factory.get("gen"), noise=0.3)
    model = build_model("mlp", 36, 4, factory.get("model"), hidden=(8,))
    clients = [
        FLClient(k, model, factory.get(f"c{k}"), sgd_steps=4, sgd_lr=0.1)
        for k in range(6)
    ]
    for k, c in enumerate(clients):
        c.set_data(gen.sample(12 + 4 * (k % 3), rng=factory.get(f"d{k}")))
    test = gen.test_set(40, rng=factory.get("test"))
    server = FLServer(model, model.get_params(), test)
    return model, clients, server


class TestRoundBitIdentity:
    def run_round(self, engine):
        _, clients, server = fresh_setup()
        sel = np.array([True, True, False, True, True, False])
        avail = np.ones(6, bool)
        return run_federated_round(
            server, clients, sel, avail, iterations=2, target_eta=0.4,
            engine=engine,
        )

    def test_round_matches_loop(self):
        res_loop = self.run_round("loop")
        res_batched = self.run_round("batched")
        assert np.array_equal(res_loop.w, res_batched.w)
        assert np.array_equal(
            res_loop.local_losses, res_batched.local_losses, equal_nan=True
        )
        assert np.array_equal(
            res_loop.local_etas, res_batched.local_etas, equal_nan=True
        )
        assert res_loop.participant_loss == res_batched.participant_loss

    def test_local_grads_match_loop(self):
        model, clients, server = fresh_setup()
        engine = BatchedClientEngine(model, clients)
        grads = engine.local_grads(server.w)
        for c, g in zip(clients, grads):
            assert np.array_equal(g, c.local_grad(server.w))

    def test_batched_local_losses_match_loop(self):
        model, clients, server = fresh_setup()
        losses = batched_local_losses(model, clients, server.w)
        for c, val in zip(clients, losses):
            assert val == c.local_loss(server.w)

    def test_supported_rejects_unknown_models(self):
        model, clients, _ = fresh_setup()

        class Opaque:
            pass

        assert not BatchedClientEngine.supported(Opaque(), clients)
        assert BatchedClientEngine.supported(model, clients)
