"""Tests for the differential-privacy upload machinery."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fl.privacy import DPSpec, PrivacyAccountant, clip_update, gaussian_mechanism


class TestClipping:
    def test_small_update_unchanged(self):
        d = np.array([0.3, 0.4])  # norm 0.5
        np.testing.assert_array_equal(clip_update(d, 1.0), d)

    def test_large_update_scaled_to_bound(self):
        d = np.array([3.0, 4.0])  # norm 5
        out = clip_update(d, 1.0)
        assert np.linalg.norm(out) == pytest.approx(1.0)
        # Direction preserved.
        np.testing.assert_allclose(out / np.linalg.norm(out), d / 5.0)

    def test_zero_vector(self):
        np.testing.assert_array_equal(clip_update(np.zeros(3), 1.0), np.zeros(3))

    def test_validation(self):
        with pytest.raises(ValueError):
            clip_update(np.ones(2), 0.0)

    @given(st.integers(0, 1000), st.floats(0.1, 5.0))
    @settings(max_examples=50)
    def test_norm_never_exceeds_bound(self, seed, bound):
        d = np.random.default_rng(seed).normal(size=10) * 10
        assert np.linalg.norm(clip_update(d, bound)) <= bound + 1e-9


class TestGaussianMechanism:
    def test_noise_scale(self, rng):
        spec = DPSpec(clip_norm=1.0, noise_multiplier=2.0)
        d = np.zeros(20_000)
        out = gaussian_mechanism(d, spec, rng)
        assert out.std() == pytest.approx(2.0, rel=0.05)

    def test_unbiased(self, rng):
        spec = DPSpec(clip_norm=10.0, noise_multiplier=0.5)
        d = np.full(50_000, 0.01)
        out = gaussian_mechanism(d, spec, rng)
        assert out.mean() == pytest.approx(0.01, abs=0.1)

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            DPSpec(clip_norm=0.0)
        with pytest.raises(ValueError):
            DPSpec(noise_multiplier=0.0)


class TestAccountant:
    def test_rho_additive(self):
        acc = PrivacyAccountant()
        spec = DPSpec(noise_multiplier=1.0)   # ρ = 0.5 per release
        acc.spend(spec, count=4)
        assert acc.rho == pytest.approx(2.0)
        assert acc.releases == 4

    def test_epsilon_formula(self):
        acc = PrivacyAccountant()
        acc.spend(DPSpec(noise_multiplier=1.0))   # ρ = 0.5
        delta = 1e-5
        expected = 0.5 + 2 * math.sqrt(0.5 * math.log(1 / delta))
        assert acc.epsilon(delta) == pytest.approx(expected)

    def test_zero_spend_zero_epsilon(self):
        assert PrivacyAccountant().epsilon() == 0.0

    def test_more_noise_less_epsilon(self):
        a, b = PrivacyAccountant(), PrivacyAccountant()
        a.spend(DPSpec(noise_multiplier=0.5))
        b.spend(DPSpec(noise_multiplier=4.0))
        assert b.epsilon() < a.epsilon()

    def test_remaining_releases_consistent(self):
        acc = PrivacyAccountant()
        spec = DPSpec(noise_multiplier=2.0)
        budget = 3.0
        n = acc.remaining_releases(spec, budget)
        assert n > 0
        # Spending exactly n stays within budget; one more exceeds it.
        acc.spend(spec, count=n)
        assert acc.epsilon() <= budget + 1e-9
        acc.spend(spec, count=1)
        assert acc.epsilon() > budget

    def test_exhausted_budget(self):
        acc = PrivacyAccountant()
        spec = DPSpec(noise_multiplier=0.3)
        acc.spend(spec, count=100)
        assert acc.remaining_releases(spec, epsilon_budget=1.0) == 0

    def test_validation(self):
        acc = PrivacyAccountant()
        with pytest.raises(ValueError):
            acc.spend(DPSpec(), count=0)
        with pytest.raises(ValueError):
            acc.epsilon(delta=0.0)


class TestDPTraining:
    def test_noisy_aggregation_still_learns_with_mild_noise(self, rng_factory):
        """A miniature DP-FL loop: clip+noise each update before the mean.
        With mild noise the model still learns."""
        from repro.datasets.synthetic import ClassConditionalGenerator
        from repro.nn.models import build_model

        gen = ClassConditionalGenerator((5, 5, 1), 3, rng_factory.get("g"), noise=0.3)
        model = build_model("logreg", 25, 3, rng_factory.get("m"), l2_reg=1e-3)
        data = [gen.sample(40, rng=rng_factory.get(f"d{i}")) for i in range(4)]
        test = gen.test_set(120, rng=rng_factory.get("t"))
        spec = DPSpec(clip_norm=1.0, noise_multiplier=0.05)
        acc = PrivacyAccountant()
        noise_rng = rng_factory.get("dp")
        w = model.get_params()
        start = model.accuracy(w, test.x, test.y)
        for _ in range(30):
            updates = []
            for ds in data:
                _, g = model.loss_and_grad(w, ds.x, ds.y)
                d = -0.3 * g
                updates.append(gaussian_mechanism(d, spec, noise_rng))
                acc.spend(spec)
            w = w + np.mean(np.stack(updates), axis=0)
        assert model.accuracy(w, test.x, test.y) > start + 0.1
        assert acc.releases == 120
        assert acc.epsilon(1e-5) > 0


class TestDPInRunner:
    def test_experiment_with_dp_runs_and_accounts(self):
        import dataclasses

        from repro.experiments.runner import Simulation, run_experiment
        from repro.experiments.scenarios import experiment_config, make_policy
        from repro.rng import RngFactory

        cfg = experiment_config(budget=120.0, num_clients=10, max_epochs=5)
        cfg = cfg.replace(
            training=dataclasses.replace(
                cfg.training, dp_noise_multiplier=0.05, dp_clip_norm=5.0
            )
        )
        sim = Simulation(cfg)
        pol = make_policy("FedAvg", cfg, RngFactory(0).get("p"))
        res = run_experiment(pol, cfg, simulation=sim)
        # Every upload was accounted: Σ selected × iterations.
        expected = int(
            (res.trace.column("num_selected") - res.trace.column("num_failed"))
            @ res.trace.column("iterations")
        )
        assert sim.dp_accountant.releases == expected
        assert sim.dp_accountant.epsilon(1e-5) > 0
        # Mild noise: training still progresses.
        assert res.trace.final_accuracy >= res.trace.accuracy[0] - 0.05

    def test_no_dp_by_default(self):
        from repro.experiments.runner import Simulation
        from repro.experiments.scenarios import experiment_config

        sim = Simulation(experiment_config(budget=100.0, num_clients=6, max_epochs=2))
        assert sim.dp_spec is None
        assert sim.dp_accountant.releases == 0

    def test_config_validation(self):
        import pytest as _pytest

        from repro.config import TrainingConfig

        with _pytest.raises(ValueError):
            TrainingConfig(dp_noise_multiplier=0.0)
        with _pytest.raises(ValueError):
            TrainingConfig(dp_clip_norm=0.0)
