"""The ``repro bench`` harness: report shape, regression gate, in-place SGD."""

import copy
import json

import numpy as np
import pytest

from repro.experiments.bench import (
    SCHEMA_VERSION,
    bench_fl_engine,
    bench_nn_kernels,
    bench_solver,
    check_regression,
    format_report,
    load_report,
    run_bench,
    save_report,
)
from repro.nn.optim import SGD


@pytest.fixture(scope="module")
def tiny_report():
    """One real (tiny) bench run shared by the structural tests."""
    return run_bench(quick=True, num_clients=8, max_epochs=2, seed=0)


class TestReportStructure:
    def test_schema_and_sections(self, tiny_report):
        assert tiny_report["schema_version"] == SCHEMA_VERSION
        assert set(tiny_report) >= {"fl", "solver", "nn", "sim", "meta", "quick"}
        assert tiny_report["meta"]["numpy"] == np.__version__

    def test_fl_section_is_bit_identical(self, tiny_report):
        fl = tiny_report["fl"]
        assert fl["identical"] is True
        assert fl["epochs"] > 0
        assert fl["speedup_vs_loop"] > 0
        assert fl["solver_iters_per_epoch"] > 0

    def test_solver_section_counts_warm_hits(self, tiny_report):
        solver = tiny_report["solver"]
        assert solver["warm"]["warm_start_hits"] == solver["config"]["horizon"] - 1
        assert solver["cold"]["warm_start_hits"] == 0
        assert solver["warm_iter_ratio"] > 0

    def test_nn_section_in_place_sgd_exact(self, tiny_report):
        assert tiny_report["nn"]["sgd_results_equal"] is True

    def test_sim_section_is_bit_exact(self, tiny_report):
        sim = tiny_report["sim"]
        assert sim["exact"] is True
        assert sim["rounds_per_s"] > 0
        assert sim["overhead_ratio"] > 0
        assert sim["events_per_round"] > 0
        assert sim["faulted_retries"] > 0  # the flaky arm exercised retries

    def test_live_section_is_bit_identical(self, tiny_report):
        live = tiny_report["live"]
        assert live["exact"] is True
        assert live["rounds"] > 0
        assert live["live_seconds"] > 0
        assert live["overhead_ratio"] > 0

    def test_format_report_renders(self, tiny_report):
        text = format_report(tiny_report)
        assert "bit-identical results: True" in text
        assert "[solver]" in text and "[nn]" in text
        assert "[sim]" in text and "bit-exact vs closed form: True" in text

    def test_round_trip_via_json(self, tiny_report, tmp_path):
        path = save_report(tiny_report, tmp_path / "bench.json")
        loaded = load_report(path)
        assert loaded["schema_version"] == SCHEMA_VERSION
        assert loaded["fl"]["identical"] is True

    def test_load_rejects_non_reports(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"hello": 1}))
        with pytest.raises(ValueError):
            load_report(bad)

    def test_pre_pr_reference_recorded(self):
        report = run_bench(
            quick=True, num_clients=8, max_epochs=2, pre_pr_seconds=100.0
        )
        fl = report["fl"]
        assert fl["pre_pr_seconds"] == 100.0
        assert fl["speedup_vs_pre_pr"] == pytest.approx(
            100.0 / fl["batched_seconds"]
        )


class TestRegressionGate:
    def test_identical_report_passes(self, tiny_report):
        assert check_regression(tiny_report, tiny_report) == []

    def test_ratio_regression_detected(self, tiny_report):
        current = copy.deepcopy(tiny_report)
        current["fl"]["speedup_vs_loop"] = (
            tiny_report["fl"]["speedup_vs_loop"] * 0.5
        )
        failures = check_regression(current, tiny_report, tolerance=0.2)
        assert any("fl.speedup_vs_loop" in f for f in failures)

    def test_regression_within_tolerance_passes(self, tiny_report):
        current = copy.deepcopy(tiny_report)
        current["fl"]["speedup_vs_loop"] = (
            tiny_report["fl"]["speedup_vs_loop"] * 0.9
        )
        assert check_regression(current, tiny_report, tolerance=0.2) == []

    def test_identity_break_always_fails(self, tiny_report):
        current = copy.deepcopy(tiny_report)
        current["fl"]["identical"] = False
        failures = check_regression(current, tiny_report)
        assert any("bit-identical" in f for f in failures)

    def test_sim_exactness_break_always_fails(self, tiny_report):
        current = copy.deepcopy(tiny_report)
        current["sim"]["exact"] = False
        failures = check_regression(current, tiny_report)
        assert any("closed-form" in f for f in failures)

    def test_sgd_mismatch_always_fails(self, tiny_report):
        current = copy.deepcopy(tiny_report)
        current["nn"]["sgd_results_equal"] = False
        failures = check_regression(current, tiny_report)
        assert any("in-place SGD" in f for f in failures)

    def test_schema_mismatch_fails(self, tiny_report):
        baseline = copy.deepcopy(tiny_report)
        baseline["schema_version"] = SCHEMA_VERSION + 1
        failures = check_regression(tiny_report, baseline)
        assert any("schema_version" in f for f in failures)

    def test_strict_gates_throughput_only_on_matching_config(self, tiny_report):
        slower = copy.deepcopy(tiny_report)
        slower["fl"]["batched_epochs_per_s"] = (
            tiny_report["fl"]["batched_epochs_per_s"] * 0.1
        )
        assert check_regression(slower, tiny_report) == []  # not strict
        failures = check_regression(slower, tiny_report, strict=True)
        assert any("batched_epochs_per_s" in f for f in failures)
        # Different config: absolute throughputs are not comparable.
        slower["fl"]["config"] = dict(
            tiny_report["fl"]["config"], num_clients=999
        )
        assert check_regression(slower, tiny_report, strict=True) == []


class TestLayerFilter:
    def test_subset_report_has_only_selected_sections(self):
        report = run_bench(quick=True, num_clients=8, max_epochs=2, layers=["solver"])
        assert "solver" in report
        assert all(k not in report for k in ("fl", "nn", "sim", "scale"))
        text = format_report(report)
        assert "[solver]" in text and "[fl]" not in text

    def test_unknown_layer_rejected(self):
        with pytest.raises(ValueError, match="unknown bench layer"):
            run_bench(quick=True, layers=["fl", "mystery"])

    def test_gate_tolerates_missing_sections(self, tiny_report):
        subset = run_bench(quick=True, num_clients=8, max_epochs=2, layers=["solver"])
        # A subset run gates only what it measured — absent sections are
        # neither compared nor treated as exactness breaks.
        assert check_regression(subset, tiny_report) == []


class TestScaleBench:
    @pytest.fixture(scope="class")
    def scale(self):
        from repro.experiments.bench import bench_scale

        return bench_scale(populations=(200,), epochs=2, seed=0)

    def test_single_shard_identical(self, scale):
        assert scale["single_shard_identical"] is True

    def test_per_population_shape(self, scale):
        per = scale["per_population"]["200"]
        assert per["flat_epochs_per_s"] > 0
        assert per["sharded_epochs_per_s"] > 0
        assert per["speedup_vs_flat"] > 0
        assert per["flat_mean_selected"] >= 1
        assert scale["sharded_epochs_per_s_k200"] == per["sharded_epochs_per_s"]

    def test_identity_break_always_fails_gate(self, scale, tiny_report):
        current = copy.deepcopy(tiny_report)
        current["scale"]["single_shard_identical"] = False
        failures = check_regression(current, tiny_report)
        assert any("single-shard" in f for f in failures)


class TestLayerBenches:
    def test_bench_solver_deterministic_iterations(self):
        a = bench_solver(num_clients=6, horizon=8, seed=1)
        b = bench_solver(num_clients=6, horizon=8, seed=1)
        assert a["cold"]["iterations"] == b["cold"]["iterations"]
        assert a["warm"]["iterations"] == b["warm"]["iterations"]

    def test_bench_nn_kernels_shape(self):
        nn = bench_nn_kernels(repeats=2, seed=0)
        assert nn["sgd_results_equal"] is True
        assert nn["conv_steps_per_s"] > 0

    def test_bench_fl_engine_tiny(self):
        fl = bench_fl_engine(num_clients=6, budget=60.0, max_epochs=2, seed=3)
        assert fl["identical"] is True
        assert fl["epochs"] >= 1


class TestInPlaceSGD:
    @pytest.mark.parametrize("momentum", [0.0, 0.5])
    def test_matches_allocating_path_bitwise(self, rng, momentum):
        w0 = rng.normal(size=1000)
        plain = SGD(lr=0.1, momentum=momentum)
        inplace = SGD(lr=0.1, momentum=momentum, in_place=True)
        w_a, w_b = w0.copy(), w0.copy()
        for _ in range(20):
            g = rng.normal(size=1000)
            w_a = plain.step(w_a, g)
            w_b = inplace.step(w_b, g)
            assert np.array_equal(w_a, w_b)

    def test_in_place_mutates_the_caller_buffer(self, rng):
        w = rng.normal(size=32)
        out = SGD(lr=0.1, in_place=True).step(w, np.ones(32))
        assert out is w

    def test_in_place_rejects_non_float64(self):
        opt = SGD(lr=0.1, in_place=True)
        with pytest.raises(ValueError):
            opt.step(np.arange(4), np.ones(4))
        with pytest.raises(ValueError):
            opt.step([1.0, 2.0], np.ones(2))

    def test_allocating_path_leaves_input_untouched(self, rng):
        w = rng.normal(size=32)
        snapshot = w.copy()
        SGD(lr=0.1).step(w, np.ones(32))
        assert np.array_equal(w, snapshot)


class TestOverheadAudit:
    @pytest.fixture(scope="class")
    def audit(self):
        from repro.experiments.bench import bench_overhead

        return bench_overhead(quick=True, seed=0)

    def test_report_shape(self, audit):
        from repro.experiments.bench import NULL_PRIMITIVES, OVERHEAD_SCHEMA_VERSION

        assert audit["schema_version"] == OVERHEAD_SCHEMA_VERSION
        assert audit["kind"] == "overhead-audit"
        assert set(audit["null_primitives_ns"]) == set(NULL_PRIMITIVES)
        assert set(audit["layers"]) == {
            "fl.batched", "fl.des", "fl.defended", "solver",
        }
        for layer in audit["layers"].values():
            assert layer["disabled_s"] > 0
            assert layer["enabled_s"] > 0
            assert layer["events"] > 0
            assert layer["timer_records_total"] > 0
            assert layer["est_null_frac"] >= 0.0

    def test_enabled_arm_attributes_hook_sites(self, audit):
        batched = audit["layers"]["fl.batched"]
        assert "epoch.complete" in batched["event_kinds"]
        assert "experiment.round" in batched["timer_records"]
        defended = audit["layers"]["fl.defended"]
        assert "defense.round" in defended["event_kinds"]

    def test_null_overhead_under_gate(self, audit):
        from repro.experiments.bench import check_overhead

        # The tentpole claim: disabled telemetry costs well under 2%.
        assert check_overhead(audit, max_null_fraction=0.02) == []

    def test_check_overhead_flags_exceeding_layer(self, audit):
        from repro.experiments.bench import check_overhead

        tight = copy.deepcopy(audit)
        tight["layers"]["solver"]["est_null_frac"] = 0.5
        failures = check_overhead(tight, max_null_fraction=0.02)
        assert len(failures) == 1 and "solver" in failures[0]

    def test_format_overhead_renders(self, audit):
        from repro.experiments.bench import format_overhead

        text = format_overhead(audit)
        assert "null-hub primitives" in text
        assert "fl.batched" in text
        assert "hook sites" in text
        assert format_overhead(audit) == text  # deterministic


class TestBenchCompare:
    def test_compare_detects_regression_and_improvement(self, tiny_report):
        from repro.experiments.bench import compare_reports

        slower = copy.deepcopy(tiny_report)
        slower["fl"]["batched_epochs_per_s"] = (
            tiny_report["fl"]["batched_epochs_per_s"] * 0.5
        )
        rows = compare_reports(tiny_report, slower, threshold=0.05)
        by_metric = {f"{r['section']}.{r['metric']}": r for r in rows}
        row = by_metric["fl.batched_epochs_per_s"]
        assert row["regressed"] is True
        assert row["delta_pct"] == pytest.approx(-50.0)

    def test_self_compare_is_clean(self, tiny_report):
        from repro.experiments.bench import compare_reports

        rows = compare_reports(tiny_report, tiny_report)
        assert rows and all(not r["regressed"] for r in rows)

    def test_lower_is_better_metrics_flip_direction(self, tiny_report):
        from repro.experiments.bench import compare_reports

        slower = copy.deepcopy(tiny_report)
        slower["fl"]["batched_epoch_latency_s"] = (
            tiny_report["fl"]["batched_epoch_latency_s"] * 2.0
        )
        rows = compare_reports(tiny_report, slower, threshold=0.05)
        by_metric = {f"{r['section']}.{r['metric']}": r for r in rows}
        assert by_metric["fl.batched_epoch_latency_s"]["regressed"] is True

    def test_tolerates_missing_sections(self, tiny_report):
        from repro.experiments.bench import compare_reports

        v1 = copy.deepcopy(tiny_report)
        del v1["sim"]  # schema-v1 reports predate the sim section
        rows = compare_reports(v1, tiny_report)
        assert all(r["section"] != "sim" for r in rows)

    def test_format_compare_renders(self, tiny_report):
        from repro.experiments.bench import compare_reports, format_compare

        text = format_compare(
            compare_reports(tiny_report, tiny_report), "A", "B"
        )
        assert "bench compare: A -> B" in text
