"""Warm-started descent solves, constraint caching, and exact projections.

The warm-start contract is *agreement*, not bit-identity: carrying the
projected-gradient step-size/iteration state across epochs may change the
iterate path, but on convex subproblems (modest duals) the warm and cold
learners must land on the same minimizer to solver tolerance.
"""

import io

import numpy as np
import pytest

from repro.core.online_learner import OnlineLearner
from repro.core.problem import EpochInputs, FedLProblem
from repro.obs import Telemetry, use_telemetry
from repro.solvers.projected_gradient import (
    ProjectedGradientState,
    projected_gradient,
)


def random_inputs(rng, m=6, budget=1e6):
    return EpochInputs(
        tau=rng.uniform(0.1, 2.0, m),
        costs=rng.uniform(0.5, 3.0, m),
        available=np.ones(m, bool),
        eta_hat=rng.uniform(0.1, 0.8, m),
        loss_gap=float(rng.uniform(0.1, 0.5)),
        loss_sensitivity=-rng.uniform(0.05, 0.2, m),
        remaining_budget=budget,
        min_participants=2,
    )


class TestWarmColdAgreement:
    def test_warm_matches_cold_on_random_epochs(self):
        """50 random epoch subproblems: warm and cold solutions agree.

        Small dual step keeps μ modest, so every subproblem is strongly
        convex and the minimizer unique — the only thing warm-starting may
        change is the path, not the destination.
        """
        rng = np.random.default_rng(42)
        m = 6
        cold = OnlineLearner(m, beta=0.3, delta=0.05, rho_max=6.0, warm_start=False)
        warm = OnlineLearner(m, beta=0.3, delta=0.05, rho_max=6.0, warm_start=True)
        for t in range(50):
            inputs = random_inputs(rng, m)
            prob = FedLProblem(inputs, rho_max=6.0)
            phi_c = cold.descent_step(inputs)
            phi_w = warm.descent_step(inputs)
            np.testing.assert_allclose(
                phi_w.to_vector(), phi_c.to_vector(), atol=1e-4,
                err_msg=f"epoch {t}",
            )
            # Keep the two learners on the same trajectory: identical
            # realized h (use the cold decision for both ascents).
            h = prob.h(phi_c)
            cold.dual_ascent(h)
            warm.dual_ascent(h)

    def test_warm_state_is_carried(self):
        rng = np.random.default_rng(7)
        warm = OnlineLearner(4, beta=0.3, delta=0.05, warm_start=True)
        assert warm._pg_state is None
        warm.descent_step(random_inputs(rng, 4))
        first = warm._pg_state
        assert isinstance(first, ProjectedGradientState)
        warm.descent_step(random_inputs(rng, 4))
        assert warm._pg_state is not first

    def test_cold_learner_keeps_no_state(self):
        rng = np.random.default_rng(7)
        cold = OnlineLearner(4, beta=0.3, delta=0.05, warm_start=False)
        cold.descent_step(random_inputs(rng, 4))
        assert cold._pg_state is None

    def test_warm_hits_counted_in_telemetry(self):
        rng = np.random.default_rng(3)
        warm = OnlineLearner(4, beta=0.3, delta=0.05, warm_start=True)
        hub = Telemetry(sink=io.StringIO(), run_id="test")
        with use_telemetry(hub):
            for _ in range(5):
                inputs = random_inputs(rng, 4)
                phi = warm.descent_step(inputs)
                warm.dual_ascent(FedLProblem(inputs, rho_max=8.0).h(phi))
        counters = hub.registry.counters
        # First solve is cold; the remaining four hit the carried state.
        assert counters.get("solver.warm_start_hits") == 4
        assert counters.get("solver.iterations") > 0
        assert "solver.iterations_saved" in counters

    def test_warm_shrinks_iteration_cap_when_residual_small(self):
        """A converged carried state caps max_iters near its iteration count."""
        calls = {}

        def objective(v):
            return float(v @ v)

        def gradient(v):
            return 2.0 * v

        state = ProjectedGradientState(step=0.25, residual=0.0, iterations=3)
        res = projected_gradient(
            objective, gradient, lambda v: v, x0=np.ones(3),
            max_iters=500, tol=1e-10, state=state,
        )
        assert res.converged
        # WARM_ITERS_FLOOR (25) bounds the shrunken cap.
        assert res.iterations <= 25


class TestConstraintMatrixCache:
    def test_instance_cache_returns_same_object(self):
        rng = np.random.default_rng(0)
        prob = FedLProblem(random_inputs(rng, 5), rho_max=6.0)
        a1, b1 = prob.constraint_matrix()
        a2, b2 = prob.constraint_matrix()
        assert a1 is a2 and b1 is b2

    def test_matrix_encodes_box_budget_participation(self):
        rng = np.random.default_rng(1)
        inputs = random_inputs(rng, 4, budget=50.0)
        prob = FedLProblem(inputs, rho_max=6.0)
        a, b = prob.constraint_matrix()
        m = inputs.num_clients
        assert a.shape == (2 * (m + 1) + 2, m + 1)
        # Every feasible-box point satisfies the box rows.
        lo, hi = prob.box_bounds()
        mid = (lo + hi) / 2.0
        assert np.all(a[: 2 * (m + 1)] @ mid <= b[: 2 * (m + 1)] + 1e-12)


class TestProjectionFeasibility:
    @pytest.mark.parametrize("seed", range(10))
    def test_projection_lands_in_feasible_set(self, seed):
        rng = np.random.default_rng(seed)
        inputs = random_inputs(rng, 8, budget=float(rng.uniform(6.0, 30.0)))
        prob = FedLProblem(inputs, rho_max=6.0)
        lo, hi = prob.box_bounds()
        for _ in range(20):
            v = rng.normal(0.0, 3.0, 9)
            x = prob.project(v)
            assert np.all(x >= lo - 1e-8) and np.all(x <= hi + 1e-8)
            assert float(np.concatenate([inputs.costs, [0.0]]) @ x) <= (
                inputs.remaining_budget + 1e-6
            )
            assert float(x[:-1].sum()) >= inputs.min_participants - 1e-6

    @pytest.mark.parametrize("seed", range(5))
    def test_projection_idempotent(self, seed):
        rng = np.random.default_rng(100 + seed)
        inputs = random_inputs(rng, 8, budget=float(rng.uniform(8.0, 30.0)))
        prob = FedLProblem(inputs, rho_max=6.0)
        for _ in range(10):
            v = rng.normal(0.0, 3.0, 9)
            x = prob.project(v)
            np.testing.assert_allclose(prob.project(x), x, atol=1e-7)
