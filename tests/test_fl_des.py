"""End-to-end tests for the DES training engine (``engine="des"``).

The runtime's integration contract:

* with the default sim config (sync, no faults) a DES experiment is
  **bit-identical** to the loop engine — same traces, same weights, and
  the simulated completion time reproduces the closed-form
  ``epoch_latency`` exactly;
* deadline aggregation degrades gracefully (stragglers dropped, round
  latency reduced, drops surfaced as ``num_failed``) until the (3b)
  participation floor would be violated, at which point the typed
  :class:`ParticipationFloorError` propagates out of ``run_experiment``;
* ``sim.*`` telemetry events are emitted for every simulated round.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.config import SimConfig
from repro.experiments.runner import run_experiment
from repro.experiments.scenarios import experiment_config, make_policy
from repro.fl.round_runner import run_federated_round
from repro.obs import Telemetry, read_events, use_telemetry
from repro.rng import RngFactory
from repro.sim import ParticipationFloorError, SimRoundSpec


def tiny_config(engine="loop", sim=None, seed=0, min_participants=3):
    cfg = experiment_config(
        dataset="fmnist",
        iid=True,
        budget=120.0,
        seed=seed,
        num_clients=8,
        min_participants=min_participants,
        max_epochs=4,
    )
    cfg = cfg.replace(training=replace(cfg.training, engine=engine))
    return cfg.replace(sim=sim) if sim is not None else cfg


def run_policy(policy, cfg):
    pol = make_policy(policy, cfg, RngFactory(cfg.seed).get(f"policy.{policy}"))
    return run_experiment(pol, cfg)


def same_outputs(a, b):
    return (
        a.stop_reason == b.stop_reason
        and bool(a.trace.equals(b.trace))
        and bool(np.array_equal(a.final_w, b.final_w))
    )


class TestBitIdentityWithLoop:
    @pytest.mark.parametrize("policy", ["FedL", "FedAvg"])
    def test_fault_free_sync_des_matches_loop(self, policy):
        loop = run_policy(policy, tiny_config(engine="loop"))
        des = run_policy(policy, tiny_config(engine="des"))
        assert len(loop.trace) > 0
        assert same_outputs(loop, des)

    def test_matches_loop_under_failure_injection(self):
        # Pre-existing crash injection composes with the runtime: crashes
        # are decided before the round, the fault-free DES reproduces the
        # surviving cohort's round bit-for-bit.
        def cfg(engine):
            base = tiny_config(engine=engine)
            return base.replace(
                population=replace(base.population, failure_prob=0.3)
            )

        assert same_outputs(
            run_policy("FedL", cfg("loop")), run_policy("FedL", cfg("des"))
        )


class TestRoundRunnerValidation:
    def test_des_requires_sim_spec(self):
        with pytest.raises(ValueError, match="sim_spec"):
            run_federated_round(
                None, [], np.ones(2, bool), np.ones(2, bool),
                iterations=1, target_eta=0.4, engine="des",
            )

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="engine"):
            run_federated_round(
                None, [], np.ones(2, bool), np.ones(2, bool),
                iterations=1, target_eta=0.4, engine="quantum",
            )

    def test_spec_participants_must_match_selection(self):
        class Stub:
            def __init__(self, cid):
                self.client_id = cid

        spec = SimRoundSpec(
            client_ids=np.array([0, 3]),  # 3 is not a selected client
            tau_loc=np.ones(2),
            tau_cm=np.ones(2),
            iterations=1,
        )
        with pytest.raises(ValueError, match="selected clients"):
            run_federated_round(
                None, [Stub(0), Stub(1), Stub(2)],
                np.array([True, True, False]), np.ones(3, bool),
                iterations=1, target_eta=0.4, engine="des", sim_spec=spec,
            )


class TestDeadlineDegradation:
    def test_deadline_drops_reduce_round_latency(self):
        # FedCS over-selects past the floor, so a binding deadline can
        # drop a straggler without violating (3b).  Epoch 0's sync width
        # is ~0.046s; a 0.01s deadline drops the slowest client and
        # strictly reduces the round latency.
        sync = run_policy("FedCS", tiny_config(engine="des"))
        capped = run_policy(
            "FedCS",
            tiny_config(
                engine="des",
                sim=SimConfig(aggregation="deadline", deadline_s=0.01),
            ),
        )
        assert capped.trace.records[0].num_failed >= 1
        assert (
            capped.trace.records[0].epoch_latency
            < sync.trace.records[0].epoch_latency
        )

    def test_floor_violation_propagates_typed_error(self):
        # FedL selects exactly the floor; a deadline faster than some
        # selected client must raise, never silently under-participate.
        with pytest.raises(ParticipationFloorError):
            run_policy(
                "FedL",
                tiny_config(
                    engine="des",
                    sim=SimConfig(aggregation="deadline", deadline_s=0.01),
                ),
            )


class TestAsyncAggregation:
    def test_quorum_round_is_faster_than_sync(self):
        sync = run_policy("FedCS", tiny_config(engine="des"))
        quorum = run_policy(
            "FedCS",
            tiny_config(engine="des", sim=SimConfig(aggregation="async", quorum=2)),
        )
        assert quorum.stop_reason in ("max_epochs", "budget_exhausted")
        # Epoch 0 sees the same selection (no feedback yet has diverged):
        # waiting for the 2 fastest of 4+ selected beats the full barrier.
        assert (
            quorum.trace.records[0].epoch_latency
            < sync.trace.records[0].epoch_latency
        )


class TestSimTelemetry:
    def test_sim_events_emitted_per_round(self, tmp_path):
        cfg = tiny_config(engine="des")
        pol = make_policy("FedL", cfg, RngFactory(0).get("policy.FedL"))
        hub = Telemetry.for_directory(tmp_path, run_id="des-test")
        with use_telemetry(hub):
            result = run_experiment(pol, cfg)
        hub.finalize(meta={})
        events = read_events(tmp_path)
        rounds = [e for e in events if e.kind == "sim.round"]
        clients = [e for e in events if e.kind == "sim.client"]
        assert len(rounds) == len(result.trace)
        for event, record in zip(rounds, result.trace.records):
            assert event.data["completion_time"] == record.epoch_latency
            assert event.data["aggregation"] == "sync"
            assert event.data["participants"] == record.num_selected
            assert event.data["survivors"] == record.num_selected
        # One sim.client event per participant per round.
        assert len(clients) == sum(r.num_selected for r in result.trace.records)
        statuses = {e.data["status"] for e in clients}
        assert statuses == {"ok"}
