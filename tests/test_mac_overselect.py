"""Tests for the TDMA MAC option and over-selection quorum semantics."""

import dataclasses

import numpy as np
import pytest

from repro.baselines import FedAvgPolicy
from repro.baselines.base import Decision
from repro.baselines.overselect import OverSelectPolicy
from repro.config import NetworkConfig
from repro.experiments.runner import Simulation, run_experiment
from repro.experiments.scenarios import experiment_config, make_policy
from repro.rng import RngFactory


class TestTdma:
    def _sims(self):
        cfg = experiment_config(budget=120.0, num_clients=10, max_epochs=4)
        cfg_tdma = cfg.replace(
            network=dataclasses.replace(cfg.network, mac="tdma")
        )
        return Simulation(cfg), Simulation(cfg_tdma)

    def test_selected_clients_share_total_slot_time(self):
        sim_f, sim_t = self._sims()
        counts = np.full(10, 30)
        st = sim_t.channel.mean_state()
        sel = np.zeros(10, bool)
        sel[:4] = True
        tau = sim_t.realized_tau(counts, st, 4, selected=sel)
        # All selected clients carry the same τ_cm component (the full
        # slot sequence), so differences among them are τ_loc only.
        bits = counts * sim_t.population.bits_per_sample
        from repro.net import compute_latency

        tau_loc = np.asarray(compute_latency(
            sim_t.population.cycles_per_bit, bits, sim_t.population.cpu_freq_hz
        ))
        comm = tau[sel] - tau_loc[sel]
        np.testing.assert_allclose(comm, comm[0])

    def test_tdma_slower_than_fdma_for_many_uploaders(self):
        """Sequential slots accumulate: for homogeneous clients TDMA's
        total is ~n full-band uploads vs FDMA's single shared-band upload
        — and by Shannon concavity FDMA at B/n is at least 1/n of the
        full-band rate, so FDMA's max <= TDMA's sum."""
        sim_f, sim_t = self._sims()
        counts = np.full(10, 30)
        sel = np.zeros(10, bool)
        sel[:5] = True
        tf = sim_f.realized_tau(counts, sim_f.channel.mean_state(), 5, selected=sel)
        tt = sim_t.realized_tau(counts, sim_t.channel.mean_state(), 5, selected=sel)
        assert tt[sel].max() >= tf[sel].max() * 0.99

    def test_experiment_completes_under_tdma(self):
        cfg = experiment_config(budget=120.0, num_clients=10, max_epochs=4)
        cfg = cfg.replace(network=dataclasses.replace(cfg.network, mac="tdma"))
        pol = make_policy("FedAvg", cfg, RngFactory(0).get("p"))
        res = run_experiment(pol, cfg)
        assert len(res.trace) >= 1

    def test_config_validation(self):
        with pytest.raises(ValueError):
            NetworkConfig(mac="csma")


class TestOverSelection:
    def test_wrapper_adds_extras_and_sets_quorum(self, rng):
        from tests.test_baselines import make_ctx

        base = FedAvgPolicy(rng)
        wrapped = OverSelectPolicy(base, extra=2)
        ctx = make_ctx(n=3, budget=1e6)
        d = wrapped.select(ctx)
        assert d.quorum == 3
        assert d.selected.sum() == 5
        assert wrapped.name == "FedAvg+over2"

    def test_extras_are_fastest_estimated(self, rng):
        from tests.test_baselines import make_ctx

        tau = np.arange(1.0, 11.0)
        ctx = make_ctx(n=2, budget=1e6, tau_last=tau)
        base = FedAvgPolicy(rng)
        wrapped = OverSelectPolicy(base, extra=3)
        d = wrapped.select(ctx)
        extras = d.selected.copy()
        # The base picked 2; extras are the fastest remaining.
        assert d.selected.sum() == 5

    def test_budget_respected_when_adding(self, rng):
        from tests.test_baselines import make_ctx

        costs = np.full(10, 10.0)
        ctx = make_ctx(n=2, budget=21.0, costs=costs)
        wrapped = OverSelectPolicy(FedAvgPolicy(rng), extra=5)
        d = wrapped.select(ctx)
        assert float(costs[d.selected].sum()) <= 21.0 + 1e-9

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            OverSelectPolicy(FedAvgPolicy(rng), extra=0)
        with pytest.raises(ValueError):
            Decision(selected=np.array([True]), iterations=1, quorum=0)

    def test_quorum_cuts_epoch_latency(self):
        """With quorum semantics, renting extras lowers epoch latency:
        the straggler tail is cut at the quorum-th fastest."""
        cfg = experiment_config(
            budget=600.0, num_clients=12, min_participants=4, max_epochs=10, seed=5
        )

        def run(wrap: bool):
            base = make_policy("FedAvg", cfg, RngFactory(5).get("p"))
            pol = OverSelectPolicy(base, extra=3) if wrap else base
            return run_experiment(pol, cfg).trace

        plain = run(False)
        over = run(True)
        horizon = min(len(plain), len(over))
        lat_plain = plain.column("epoch_latency")[:horizon].mean()
        lat_over = over.column("epoch_latency")[:horizon].mean()
        assert lat_over <= lat_plain * 1.05

    def test_quorum_with_failures_keeps_training(self):
        cfg = experiment_config(
            budget=300.0, num_clients=12, min_participants=4, max_epochs=8, seed=6
        )
        cfg = cfg.replace(
            population=dataclasses.replace(cfg.population, failure_prob=0.3)
        )
        base = make_policy("FedAvg", cfg, RngFactory(6).get("p"))
        pol = OverSelectPolicy(base, extra=3)
        res = run_experiment(pol, cfg)
        assert len(res.trace) >= 3
