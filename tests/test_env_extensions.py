"""Tests for the environment extensions: Markov availability and the
Dirichlet partition option in the experiment runner."""

import dataclasses

import numpy as np
import pytest

from repro.config import DataConfig, PopulationConfig
from repro.env.availability import MarkovAvailabilityProcess
from repro.experiments.runner import Simulation, run_experiment
from repro.experiments.scenarios import experiment_config, make_policy
from repro.rng import RngFactory


class TestMarkovAvailability:
    def test_stationary_mean(self, rng):
        p = MarkovAvailabilityProcess(2000, 0.7, rng, mean_on_epochs=5.0)
        fractions = [p.sample().mean() for _ in range(200)]
        assert np.mean(fractions[50:]) == pytest.approx(0.7, abs=0.05)

    def test_burstiness_positive_autocorrelation(self, rng):
        p = MarkovAvailabilityProcess(500, 0.5, rng, mean_on_epochs=10.0)
        m1 = p.sample().astype(float)
        m2 = p.sample().astype(float)
        corr = np.corrcoef(m1, m2)[0, 1]
        assert corr > 0.5  # long sojourns → strongly correlated epochs

    def test_iid_sojourn_uncorrelated(self, rng):
        # mean_on = 1/(1-p) = 2 at p = 0.5 → exactly i.i.d. Bernoulli.
        p = MarkovAvailabilityProcess(500, 0.5, rng, mean_on_epochs=2.0)
        m1 = p.sample().astype(float)
        m2 = p.sample().astype(float)
        corr = np.corrcoef(m1, m2)[0, 1]
        assert abs(corr) < 0.25

    def test_floor_enforced(self, rng):
        p = MarkovAvailabilityProcess(10, 0.3, rng, min_available=4)
        for _ in range(50):
            assert p.sample().sum() >= 4

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            MarkovAvailabilityProcess(0, 0.5, rng)
        with pytest.raises(ValueError):
            MarkovAvailabilityProcess(5, 1.0, rng)
        with pytest.raises(ValueError):
            MarkovAvailabilityProcess(5, 0.5, rng, mean_on_epochs=0.5)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            PopulationConfig(availability_model="lognormal")
        with pytest.raises(ValueError):
            PopulationConfig(availability_model="markov", availability_prob=1.0)
        with pytest.raises(ValueError):
            PopulationConfig(availability_sojourn=0.5)

    def test_runner_uses_markov_model(self):
        cfg = experiment_config(budget=120.0, num_clients=10, max_epochs=4)
        cfg = cfg.replace(
            population=dataclasses.replace(
                cfg.population, availability_model="markov", availability_prob=0.7
            )
        )
        sim = Simulation(cfg)
        assert isinstance(sim.availability, MarkovAvailabilityProcess)
        pol = make_policy("FedAvg", cfg, RngFactory(0).get("p"))
        res = run_experiment(pol, cfg, simulation=sim)
        assert len(res.trace) >= 1


class TestDirichletPartitionOption:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            DataConfig(partition="shards")
        with pytest.raises(ValueError):
            DataConfig(dirichlet_alpha=0.0)

    def test_runner_uses_dirichlet(self):
        cfg = experiment_config(budget=120.0, num_clients=10, max_epochs=3)
        cfg = cfg.replace(
            data=dataclasses.replace(
                cfg.data, iid=False, partition="dirichlet", dirichlet_alpha=0.2
            )
        )
        sim = Simulation(cfg)
        dists = np.stack([s.class_probs for s in sim.streams])
        # Low-alpha Dirichlet rows are highly skewed.
        assert np.sort(dists, axis=1)[:, -1].mean() > 0.4
        np.testing.assert_allclose(dists.sum(axis=1), 1.0)

    def test_paper_partition_unchanged_default(self):
        cfg = experiment_config(budget=120.0, num_clients=10, max_epochs=3, iid=False)
        sim = Simulation(cfg)
        dists = np.stack([s.class_probs for s in sim.streams])
        # Paper scheme: top-2 classes hold exactly principal_frac.
        top2 = np.sort(dists, axis=1)[:, -2:].sum(axis=1)
        np.testing.assert_allclose(top2, cfg.data.non_iid_principal_frac)
