"""Property-based tests (hypothesis) on the core decision machinery.

Invariants exercised over randomized instances:

* the descent step always lands in the feasible set X̃,
* the dual state is always elementwise nonnegative,
* FedLProblem.project returns feasible points and is idempotent,
* Theorem 1's h-algebra holds for random (η̂, x, ρ),
* the rounded FedL decision is always feasible in the full policy loop.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.base import EpochContext, RoundFeedback
from repro.core.fedl import FedLPolicy
from repro.core.online_learner import OnlineLearner
from repro.core.phi import Phi
from repro.core.problem import EpochInputs, FedLProblem


def inputs_from_seed(seed: int, m: int = 8, n: int = 2) -> EpochInputs:
    rng = np.random.default_rng(seed)
    avail = rng.random(m) < 0.8
    # Guarantee n available.
    if avail.sum() < n:
        avail[rng.choice(m, size=n, replace=False)] = True
    return EpochInputs(
        tau=rng.uniform(0.05, 3.0, m),
        costs=rng.uniform(0.2, 5.0, m),
        available=avail,
        eta_hat=rng.uniform(0.0, 0.95, m),
        loss_gap=rng.uniform(-0.5, 1.0),
        loss_sensitivity=-rng.uniform(0.0, 0.2, m),
        remaining_budget=rng.uniform(n * 5.0, 100.0),
        min_participants=n,
    )


def assert_feasible(inputs: EpochInputs, v: np.ndarray, rho_max: float) -> None:
    m = inputs.num_clients
    x, rho = v[:m], v[m]
    assert np.all(x >= -1e-7) and np.all(x <= 1 + 1e-7)
    assert np.all(x[~inputs.available] <= 1e-7)
    assert 1.0 - 1e-7 <= rho <= rho_max + 1e-7
    assert float(inputs.costs @ x) <= inputs.remaining_budget + 1e-5
    assert x[inputs.available].sum() >= inputs.min_participants - 1e-5


class TestProjectProperties:
    @given(st.integers(0, 10_000), st.integers(0, 1000))
    @settings(max_examples=60, deadline=None)
    def test_projection_feasible_and_idempotent(self, seed, vseed):
        inputs = inputs_from_seed(seed)
        prob = FedLProblem(inputs, rho_max=6.0)
        rng = np.random.default_rng(vseed)
        v = np.concatenate([rng.uniform(-1, 2, inputs.num_clients),
                            [rng.uniform(-2, 12)]])
        p1 = prob.project(v)
        assert_feasible(inputs, p1, rho_max=6.0)
        p2 = prob.project(p1)
        np.testing.assert_allclose(p1, p2, atol=1e-5)

    @given(st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_projection_of_feasible_is_identity(self, seed):
        inputs = inputs_from_seed(seed)
        prob = FedLProblem(inputs, rho_max=6.0)
        # Interior points are fixed points of the projection.
        v = prob.interior_point()
        if v is None:
            return
        np.testing.assert_allclose(prob.project(v), v, atol=1e-6)


class TestLearnerProperties:
    @given(st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_descent_step_always_feasible(self, seed):
        inputs = inputs_from_seed(seed)
        learner = OnlineLearner(
            inputs.num_clients, beta=0.4, delta=0.4, rho_max=6.0
        )
        # Random dual pressure.
        rng = np.random.default_rng(seed + 1)
        learner.state.mu = np.abs(rng.normal(size=inputs.num_clients + 1))
        phi = learner.descent_step(inputs)
        assert_feasible(inputs, phi.to_vector(), rho_max=6.0)

    @given(st.integers(0, 10_000), st.integers(1, 30))
    @settings(max_examples=30, deadline=None)
    def test_duals_stay_nonnegative(self, seed, steps):
        rng = np.random.default_rng(seed)
        learner = OnlineLearner(5, beta=0.3, delta=0.5)
        for _ in range(steps):
            learner.dual_ascent(rng.normal(scale=3.0, size=6))
        assert np.all(learner.mu >= 0)


class TestTheorem1Algebra:
    @given(
        st.floats(0.0, 0.99),
        st.floats(0.0, 1.0),
        st.floats(1.0001, 8.0),
    )
    @settings(max_examples=200)
    def test_hk_sign_equivalence(self, eta_hat, x, rho):
        """h_k <= 0  ⇔  η̂ x <= 1 − 1/ρ  (Theorem 1's key step)."""
        hk = eta_hat * x * rho - rho + 1.0
        eta_t = 1.0 - 1.0 / rho
        lhs = hk <= 1e-12
        rhs = eta_hat * x <= eta_t + 1e-12
        assert lhs == rhs


class TestPolicyLoopProperties:
    @given(st.integers(0, 2_000))
    @settings(max_examples=20, deadline=None)
    def test_fedl_decision_always_feasible(self, seed):
        m, n = 8, 2
        rng = np.random.default_rng(seed)
        pol = FedLPolicy(
            num_clients=m, budget=100.0, min_participants=n, theta=0.5,
            rng=np.random.default_rng(seed + 7),
        )
        for t in range(3):
            inputs = inputs_from_seed(seed + 13 * t, m=m, n=n)
            ctx = EpochContext(
                t=t,
                available=inputs.available,
                costs=inputs.costs,
                remaining_budget=inputs.remaining_budget,
                min_participants=n,
                tau_last=inputs.tau,
                local_losses=np.full(m, 1.0),
            )
            d = pol.select(ctx)
            sel = d.selected
            assert not sel[~inputs.available].any()
            assert sel.sum() >= min(n, int(inputs.available.sum()))
            tau_fb = inputs.tau
            pol.update(
                RoundFeedback(
                    t=t,
                    selected=sel,
                    tau_realized=tau_fb,
                    local_etas=np.where(sel, 0.6, np.nan),
                    local_losses=np.full(m, 0.9),
                    population_loss=0.9,
                    cost_spent=float(inputs.costs[sel].sum()),
                    epoch_latency=float(tau_fb[sel].max()) * d.iterations,
                )
            )
