"""Property tests for the truthful procurement auction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.auction import AuctionResult, run_procurement_auction


class TestMechanics:
    def test_lowest_scores_win(self):
        bids = np.array([1.0, 2.0, 3.0, 4.0])
        quality = np.ones(4)
        res = run_procurement_auction(bids, quality, n=2)
        assert res.winners[[0, 1]].all()
        assert not res.winners[[2, 3]].any()

    def test_quality_weighting(self):
        # Client 2 bids more but has 10x quality → best score.
        bids = np.array([1.0, 1.0, 5.0])
        quality = np.array([1.0, 1.0, 10.0])
        res = run_procurement_auction(bids, quality, n=1)
        assert res.winners[2]

    def test_critical_payment_value(self):
        bids = np.array([1.0, 2.0, 5.0])
        quality = np.ones(3)
        res = run_procurement_auction(bids, quality, n=2)
        # Threshold score = 5 → both winners paid 5.
        np.testing.assert_allclose(res.payments[[0, 1]], 5.0)
        assert res.payments[2] == 0.0

    def test_no_competition_pays_bid(self):
        bids = np.array([3.0, 7.0])
        res = run_procurement_auction(bids, np.ones(2), n=2)
        np.testing.assert_allclose(res.payments, bids)

    def test_budget_feasibility_flag(self):
        bids = np.array([1.0, 2.0, 5.0])
        res = run_procurement_auction(bids, np.ones(3), n=2, budget=5.0)
        assert not res.feasible      # payments are 5+5 = 10 > 5
        res2 = run_procurement_auction(bids, np.ones(3), n=2, budget=20.0)
        assert res2.feasible

    def test_validation(self):
        with pytest.raises(ValueError):
            run_procurement_auction(np.array([0.0, 1.0]), np.ones(2), n=1)
        with pytest.raises(ValueError):
            run_procurement_auction(np.array([1.0]), -np.ones(1), n=1)
        with pytest.raises(ValueError):
            run_procurement_auction(np.ones(3), np.ones(3), n=4)
        with pytest.raises(ValueError):
            run_procurement_auction(np.ones(3), np.ones(2), n=1)


class TestTruthfulness:
    @given(st.integers(0, 5_000))
    @settings(max_examples=80, deadline=None)
    def test_individual_rationality(self, seed):
        """Winners are never paid below their bid (so never below true
        cost when bidding truthfully)."""
        rng = np.random.default_rng(seed)
        m = rng.integers(3, 10)
        bids = rng.uniform(0.5, 5.0, m)
        quality = rng.uniform(0.1, 3.0, m)
        n = int(rng.integers(1, m))
        res = run_procurement_auction(bids, quality, n)
        assert np.all(res.payments[res.winners] >= bids[res.winners] - 1e-9)
        assert np.all(res.payments[~res.winners] == 0.0)

    @given(st.integers(0, 5_000))
    @settings(max_examples=80, deadline=None)
    def test_misreporting_never_helps(self, seed):
        """Dominant-strategy truthfulness: for a random bidder and a
        random misreport, utility(misreport) <= utility(truth), where
        utility = payment − true_cost if winning else 0."""
        rng = np.random.default_rng(seed)
        m = int(rng.integers(3, 8))
        true_costs = rng.uniform(0.5, 5.0, m)
        quality = rng.uniform(0.1, 3.0, m)
        n = int(rng.integers(1, m))
        k = int(rng.integers(0, m))

        def utility(report_k: float) -> float:
            bids = true_costs.copy()
            bids[k] = report_k
            res = run_procurement_auction(bids, quality, n)
            if not res.winners[k]:
                return 0.0
            return float(res.payments[k] - true_costs[k])

        u_truth = utility(true_costs[k])
        misreport = float(rng.uniform(0.1, 10.0))
        assert utility(misreport) <= u_truth + 1e-9

    @given(st.integers(0, 2_000))
    @settings(max_examples=40, deadline=None)
    def test_monotonicity(self, seed):
        """Lowering your bid never turns a win into a loss."""
        rng = np.random.default_rng(seed)
        m = int(rng.integers(3, 8))
        bids = rng.uniform(0.5, 5.0, m)
        quality = rng.uniform(0.1, 3.0, m)
        n = int(rng.integers(1, m))
        res = run_procurement_auction(bids, quality, n)
        k = int(np.flatnonzero(res.winners)[0])
        lower = bids.copy()
        lower[k] = bids[k] * 0.5
        res2 = run_procurement_auction(lower, quality, n)
        assert res2.winners[k]
