"""Round-trip tests for ``ExperimentResult`` / config persistence.

Mirrors the existing ``Trace`` persistence tests: exact round trip of
every field (trace, ``stop_reason``, ``final_w``, config) plus
schema-version-mismatch rejection.
"""

import json

import numpy as np
import pytest

from repro.config import ExperimentConfig
from repro.experiments.persistence import (
    RESULT_SCHEMA_VERSION,
    config_from_dict,
    config_to_dict,
    load_results,
    result_from_dict,
    result_to_dict,
    save_results,
)
from repro.experiments.scenarios import experiment_config, paper_scale_config
from repro.experiments.sweep import PolicySpec, SweepJob, execute_job, results_identical


@pytest.fixture(scope="module")
def small_result():
    cfg = experiment_config(
        dataset="fmnist",
        iid=True,
        budget=120.0,
        seed=0,
        num_clients=8,
        min_participants=3,
        max_epochs=3,
    )
    return execute_job(SweepJob(PolicySpec("FedAvg"), cfg))


class TestConfigRoundTrip:
    def test_default_config(self):
        cfg = ExperimentConfig()
        assert config_from_dict(config_to_dict(cfg)) == cfg

    def test_non_default_config_with_tuples(self):
        cfg = paper_scale_config(dataset="cifar10", iid=False, seed=7)
        back = config_from_dict(config_to_dict(cfg))
        assert back == cfg
        # JSON turns tuples into lists; the loader must turn them back.
        assert isinstance(back.population.cost_range, tuple)
        assert isinstance(back.training.hidden_units, tuple)

    def test_round_trip_is_json_safe(self):
        cfg = ExperimentConfig()
        assert config_from_dict(json.loads(json.dumps(config_to_dict(cfg)))) == cfg

    def test_validation_reruns_on_load(self):
        data = config_to_dict(ExperimentConfig())
        data["budget"] = -1.0
        with pytest.raises(ValueError):
            config_from_dict(data)


class TestResultRoundTrip:
    def test_dict_round_trip_is_exact(self, small_result):
        back = result_from_dict(result_to_dict(small_result))
        assert results_identical(back, small_result)

    def test_fields_survive(self, small_result):
        back = result_from_dict(result_to_dict(small_result))
        assert back.stop_reason == small_result.stop_reason
        assert back.config == small_result.config
        np.testing.assert_array_equal(back.final_w, small_result.final_w)
        assert back.trace.equals(small_result.trace)
        # rho is NaN for FedAvg records: the NaN must survive the trip.
        assert np.isnan(back.trace.column("rho")).all()

    def test_json_round_trip_is_exact(self, small_result):
        back = result_from_dict(json.loads(json.dumps(result_to_dict(small_result))))
        assert results_identical(back, small_result)

    def test_schema_version_mismatch_rejected(self, small_result):
        data = result_to_dict(small_result)
        data["schema"] = RESULT_SCHEMA_VERSION + 1
        with pytest.raises(ValueError):
            result_from_dict(data)

    def test_nested_trace_schema_mismatch_rejected(self, small_result):
        data = result_to_dict(small_result)
        data["trace"]["schema"] = 99
        with pytest.raises(ValueError):
            result_from_dict(data)


class TestResultBundles:
    def test_save_load_bundle(self, tmp_path, small_result):
        path = save_results({"A": small_result, "B": small_result}, tmp_path / "r.json")
        loaded = load_results(path)
        assert set(loaded) == {"A", "B"}
        for res in loaded.values():
            assert results_identical(res, small_result)

    def test_bundle_schema_checked(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": 99, "results": {}}))
        with pytest.raises(ValueError):
            load_results(path)


class TestAtomicWrites:
    """save_results/save_traces must never leave a torn file behind."""

    def test_failed_serialization_preserves_old_file(self, tmp_path, small_result):
        path = tmp_path / "results.json"
        save_results({"a": small_result}, path)
        before = path.read_text()

        class Exploding:
            """Raises midway through result_to_dict."""

            @property
            def trace(self):
                raise RuntimeError("boom")

        with pytest.raises(Exception):
            save_results({"a": Exploding()}, path)
        assert path.read_text() == before          # old payload intact
        assert list(tmp_path.glob("*.tmp")) == []  # no temp litter

    def test_save_results_no_temp_litter_on_success(self, tmp_path, small_result):
        path = tmp_path / "out.json"
        save_results({"a": small_result}, path)
        leftovers = [p for p in tmp_path.iterdir() if p != path]
        assert leftovers == []

    def test_save_traces_atomic(self, tmp_path, small_result):
        from repro.experiments.persistence import load_traces, save_traces

        path = tmp_path / "traces.json"
        save_traces({"t": small_result.trace}, path)
        assert list(tmp_path.glob("*.tmp")) == []
        loaded = load_traces(path)
        assert loaded["t"].equals(small_result.trace)

    # The live engine's per-client event files (live_client_<id>.json,
    # written by LiveRuntime.write_client_stats) carry the same
    # torn-write guarantee as every other persisted artifact.

    def test_live_client_stats_failed_serialization(self, tmp_path):
        from repro.live.runtime import atomic_write_json

        path = tmp_path / "live_client_3.json"
        atomic_write_json(path, {"client": 3, "rounds": 2})
        before = path.read_text()
        with pytest.raises(TypeError):
            # a set is not JSON-serializable: crash mid-serialization
            atomic_write_json(path, {"client": 3, "drops": {1, 2}})
        assert path.read_text() == before              # old payload intact
        assert list(tmp_path.glob("*.tmp*")) == []     # no temp litter

    def test_live_client_stats_crash_mid_write(self, tmp_path, monkeypatch):
        from pathlib import Path

        from repro.live.runtime import atomic_write_json

        path = tmp_path / "live_client_0.json"
        atomic_write_json(path, {"client": 0})
        before = path.read_text()
        real_write = Path.write_text

        def torn_write(self, text, **kwargs):
            real_write(self, text[: len(text) // 2], **kwargs)
            raise OSError("disk full")

        monkeypatch.setattr(Path, "write_text", torn_write)
        with pytest.raises(OSError):
            atomic_write_json(path, {"client": 0, "rounds": 99})
        monkeypatch.undo()
        assert path.read_text() == before              # never half-replaced
        assert list(tmp_path.glob("*.tmp*")) == []     # torn temp removed
        json.loads(path.read_text())                   # still valid JSON

    def test_live_client_stats_fresh_write_crash_leaves_nothing(self, tmp_path):
        from repro.live.runtime import atomic_write_json

        path = tmp_path / "live_client_7.json"
        with pytest.raises(TypeError):
            atomic_write_json(path, {"bad": object()})
        assert not path.exists()
        assert list(tmp_path.iterdir()) == []


class TestRobustnessSchema:
    def test_attack_defense_round_trip(self):
        cfg = ExperimentConfig()
        from dataclasses import replace

        from repro.config import AttackConfig, DefenseConfig

        cfg = replace(
            cfg,
            attack=AttackConfig(kind="gauss", fraction=0.25, scale=2.0),
            defense=DefenseConfig(aggregator="trimmed-mean", trim_fraction=0.3),
        )
        restored = config_from_dict(config_to_dict(cfg))
        assert restored == cfg

    def test_v2_payload_without_attack_sections_loads(self, small_result):
        payload = result_to_dict(small_result)
        payload["schema"] = 2
        payload["config"].pop("attack")
        payload["config"].pop("defense")
        restored = result_from_dict(payload)
        assert restored.config.attack.kind == "none"
        assert restored.config.defense.aggregator == "none"
