"""Property-based invariants for every member of the strategy registry.

Four laws, each asserted against the live ``STRATEGY_REGISTRY`` so new
members are covered the moment they register:

1. **Containment & floor** — every selection is a subset of the available
   clients and, whenever at least ``n`` clients are available, selects at
   least ``n`` of them (and never zero).
2. **Budget** — strategies that declare ``budget_aware`` never spend more
   than the remaining budget whenever the ``n`` cheapest available
   clients fit it (the strict per-epoch affordability contract).
3. **Permutation equivariance** — relabeling the clients relabels the
   selection identically for every non-randomized strategy.  Asserted
   after one observation round: cold-start score ties (all clients
   equally unknown) break by index, which is the one place labels may
   legitimately leak in.
4. **Determinism** — two instances built from the same seed, driven
   through the same episode, make identical decisions.  Holds for every
   member, randomized or not.

Tie-breaking is the classic way such tests go flaky, so the generated
instances are tie-free by construction: local losses come from distinct
powers of two (every subset sum is unique, so greedy densities and
knapsack optima are unique), costs from distinct odd primes (no two
loss/cost densities coincide), and latencies from distinct primes.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines.base import EpochContext, RoundFeedback
from repro.experiments.scenarios import experiment_config
from repro.strategies import STRATEGY_REGISTRY, build_strategy

ALL_STRATEGIES = sorted(STRATEGY_REGISTRY)
BUDGET_AWARE = sorted(n for n, s in STRATEGY_REGISTRY.items() if s.budget_aware)
NON_RANDOMIZED = sorted(n for n, s in STRATEGY_REGISTRY.items() if not s.randomized)

# Tie-free value pools (see module docstring).
LOSS_POOL = np.array([2.0 ** -(k + 1) for k in range(16)])
COST_POOL = np.array(
    [3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59], dtype=float
) / 10.0
TAU_POOL = np.array(
    [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37,
     41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89], dtype=float
) / 20.0
ETA_POOL = np.array([(k + 1) / 17.0 for k in range(16)])

PROPERTY_SETTINGS = settings(
    max_examples=10,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


@st.composite
def episodes(draw, min_budget_factor=0.5):
    """A two-epoch episode: tie-free prices/latencies/losses, per-epoch
    availability with at least ``n`` clients up, and a budget scaled off
    the cheapest feasible selection by ``factor`` (``>= 1`` guarantees
    the budget-aware precondition holds)."""
    m = draw(st.integers(min_value=4, max_value=8))
    n = draw(st.integers(min_value=1, max_value=min(3, m - 1)))
    cost_perm = list(draw(st.permutations(range(16))))
    loss_perm = list(draw(st.permutations(range(16))))
    tau_perm = list(draw(st.permutations(range(24))))
    eta_perm = list(draw(st.permutations(range(16))))
    factor = draw(
        st.floats(min_value=min_budget_factor, max_value=4.0,
                  allow_nan=False, allow_infinity=False)
    )
    avail = []
    for _ in range(2):
        order = list(draw(st.permutations(range(m))))
        up = draw(st.integers(min_value=n, max_value=m))
        mask = np.zeros(m, dtype=bool)
        mask[order[:up]] = True
        avail.append(mask)
    relabel = np.array(list(draw(st.permutations(range(m)))))
    return {
        "m": m,
        "n": n,
        "factor": factor,
        "avail": avail,
        "costs": [COST_POOL[cost_perm[:m]], COST_POOL[cost_perm[8:8 + m]]],
        # Three latency vectors: tau_last at t=0, realized at t=0 (= tau_last
        # at t=1), realized at t=1.  tau_oracle is the next realized vector.
        "taus": [
            TAU_POOL[tau_perm[:m]],
            TAU_POOL[tau_perm[8:8 + m]],
            TAU_POOL[tau_perm[16:16 + m]],
        ],
        "losses": [LOSS_POOL[loss_perm[:m]], LOSS_POOL[loss_perm[8:8 + m]]],
        "etas": [ETA_POOL[eta_perm[:m]], ETA_POOL[eta_perm[8:8 + m]]],
        "relabel": relabel,
    }


def build(name, ep, seed=0):
    cfg = experiment_config(
        dataset="fmnist",
        iid=True,
        budget=100.0,
        seed=seed,
        num_clients=ep["m"],
        min_participants=ep["n"],
        max_epochs=3,
    )
    return build_strategy(name, cfg, np.random.default_rng(seed))


def cheapest_n_cost(costs, avail, n):
    return float(np.sort(costs[avail])[:n].sum())


def play(policy, ep, perm=None):
    """Drive ``policy`` through the episode (optionally relabeled by
    ``perm``: every client-indexed array becomes ``arr[perm]``) and return
    one record per epoch: (selected mask, iterations, spend, budget)."""
    m, n = ep["m"], ep["n"]
    p = np.arange(m) if perm is None else np.asarray(perm)
    taus = [t[p] for t in ep["taus"]]
    records = []
    prev_losses = np.full(m, np.nan)  # nothing observed before t=0
    for t in range(2):
        avail = ep["avail"][t][p]
        costs = ep["costs"][t][p]
        budget = ep["factor"] * cheapest_n_cost(costs, avail, n)
        ctx = EpochContext(
            t=t,
            available=avail,
            costs=costs,
            remaining_budget=budget,
            min_participants=n,
            tau_last=taus[t],
            local_losses=prev_losses,
            tau_oracle=taus[t + 1],
        )
        decision = policy.select(ctx)
        sel = decision.selected
        spend = float(costs[sel].sum())
        records.append((sel.copy(), int(decision.iterations), spend, budget))
        observed = ep["losses"][t][p]  # every client reports this round
        policy.update(RoundFeedback(
            t=t,
            selected=sel,
            tau_realized=taus[t + 1],
            local_etas=np.where(sel, ep["etas"][t][p], np.nan),
            local_losses=observed,
            population_loss=0.0,
            cost_spent=spend,
            epoch_latency=float(decision.iterations * taus[t + 1][sel].max()),
        ))
        prev_losses = observed
    return records


class TestContainmentAndFloor:
    @pytest.mark.parametrize("name", ALL_STRATEGIES)
    @PROPERTY_SETTINGS
    @given(ep=episodes())
    def test_selection_within_available_and_meets_floor(self, name, ep):
        for t, (sel, iters, _, _) in enumerate(play(build(name, ep), ep)):
            avail = ep["avail"][t]
            assert not np.any(sel & ~avail), f"{name} picked unavailable at t={t}"
            assert int(sel.sum()) >= ep["n"], f"{name} under floor at t={t}"
            assert iters >= 1


class TestBudget:
    @pytest.mark.parametrize("name", BUDGET_AWARE)
    @PROPERTY_SETTINGS
    @given(ep=episodes(min_budget_factor=1.0))
    def test_spend_within_budget_when_cheapest_n_affordable(self, name, ep):
        # factor >= 1 means the n cheapest available clients always fit
        # the remaining budget — exactly the declared precondition.
        for t, (_, _, spend, budget) in enumerate(play(build(name, ep), ep)):
            assert spend <= budget + 1e-9, (
                f"{name} overspent at t={t}: {spend} > {budget}"
            )


class TestPermutationEquivariance:
    @pytest.mark.parametrize("name", NON_RANDOMIZED)
    @PROPERTY_SETTINGS
    @given(ep=episodes())
    def test_relabeling_clients_relabels_the_selection(self, name, ep):
        p = ep["relabel"]
        base = play(build(name, ep), ep)
        relabeled = play(build(name, ep), ep, perm=p)
        # Epoch 1: one full observation round has passed, so score-based
        # members have tie-free state; cold-start (t=0) index tie-breaks
        # are exempt by design.
        sel_base, iters_base, _, _ = base[1]
        sel_perm, iters_perm, _, _ = relabeled[1]
        assert np.array_equal(sel_perm, sel_base[p]), (
            f"{name} is not permutation-equivariant"
        )
        assert iters_perm == iters_base


class TestDeterminism:
    @pytest.mark.parametrize("name", ALL_STRATEGIES)
    @PROPERTY_SETTINGS
    @given(ep=episodes(), seed=st.integers(min_value=0, max_value=2**31 - 1))
    def test_identical_seed_identical_decisions(self, name, ep, seed):
        runs = [play(build(name, ep, seed=seed), ep) for _ in range(2)]
        for (sel_a, it_a, sp_a, _), (sel_b, it_b, sp_b, _) in zip(*runs):
            assert np.array_equal(sel_a, sel_b)
            assert it_a == it_b
            assert sp_a == sp_b
