"""Strategy-registry contract: typed errors, CLI exit codes, round-trips.

Three surfaces of the declarative zoo are pinned here:

* the registry itself — every member constructs from a plain name or a
  ``{"name", "params"}`` dict, bad names/params raise *typed* errors,
  and the capability flags match the contracts the property suite
  enforces;
* serialization — every registered name round-trips through
  :class:`~repro.experiments.sweep.PolicySpec` / JSON / the sweep-cache
  key, parameter overrides move the cache key, and a cached result
  carries the spec's self-description;
* the CLI — unknown names and malformed/undeclared ``--param`` flags
  exit 2 with a diagnostic, and ``repro tournament --list`` agrees with
  ``strategy_names()`` / ``scenario_names()`` exactly.
"""

import dataclasses
import json

import numpy as np
import pytest

from repro.baselines.base import SelectionPolicy
from repro.cli import main
from repro.experiments.scenarios import experiment_config, make_policy
from repro.experiments.sweep import (
    PolicySpec,
    SweepCache,
    SweepJob,
    execute_job,
    job_key,
    results_identical,
)
from repro.experiments.tournament import SCENARIOS
from repro.strategies import (
    STRATEGY_REGISTRY,
    StrategyError,
    StrategyParamError,
    UnknownStrategyError,
    build_strategy,
    get_strategy,
    register_strategy,
    strategy_names,
)

NEW_ZOO = (
    "GradNorm", "LossProp", "Divergence",
    "GreedyUtility", "KnapsackDP", "HardDeadline", "SoftDeadline",
)
PAPER_SET = ("FedL", "FedAvg", "FedCS", "Pow-d")


def tiny_config(seed=0, **overrides):
    cfg = experiment_config(
        dataset="fmnist",
        iid=True,
        budget=100.0,
        seed=seed,
        num_clients=8,
        min_participants=3,
        max_epochs=2,
    )
    return cfg.replace(**overrides) if overrides else cfg


class TestRegistry:
    def test_zoo_membership(self):
        names = strategy_names()
        assert len(names) >= 15
        for name in PAPER_SET + NEW_ZOO:
            assert name in names

    def test_every_member_builds_from_string_and_dict(self):
        cfg = tiny_config()
        for name in strategy_names():
            by_name = build_strategy(name, cfg, np.random.default_rng(0))
            by_dict = build_strategy({"name": name}, cfg, np.random.default_rng(0))
            for policy in (by_name, by_dict):
                assert isinstance(policy, SelectionPolicy)
                assert policy.name.startswith(name.split("(")[0]) or name in (
                    "OverSelect", "HardDeadline", "SoftDeadline"
                )

    def test_make_policy_goes_through_the_registry(self):
        cfg = tiny_config()
        policy = make_policy("GradNorm", cfg, np.random.default_rng(0), params={"ema": 0.25})
        assert policy.ema == 0.25

    def test_unknown_name_is_typed(self):
        with pytest.raises(UnknownStrategyError) as excinfo:
            build_strategy("Bogus", tiny_config(), np.random.default_rng(0))
        assert excinfo.value.strategy == "Bogus"
        assert isinstance(excinfo.value, ValueError)  # legacy make_policy contract
        with pytest.raises(UnknownStrategyError):
            get_strategy("AlsoBogus")

    @pytest.mark.parametrize("name,params", [
        ("FedAvg", {"no_such_knob": 1}),       # unknown parameter
        ("FedAvg", {"iterations": 0}),         # below minimum
        ("FedAvg", {"iterations": "two"}),     # ill-typed
        ("GradNorm", {"ema": 2.0}),            # above maximum
        ("OverSelect", {"base": "Bogus"}),     # bad choice
    ])
    def test_bad_params_are_typed(self, name, params):
        with pytest.raises(StrategyParamError) as excinfo:
            build_strategy(name, tiny_config(), np.random.default_rng(0), params=params)
        assert excinfo.value.strategy
        assert excinfo.value.param in params or excinfo.value.param == "base"

    def test_dict_ref_needs_a_name(self):
        with pytest.raises(StrategyError):
            build_strategy({"params": {}}, tiny_config(), np.random.default_rng(0))

    def test_duplicate_registration_rejected(self):
        with pytest.raises(StrategyError):
            register_strategy(STRATEGY_REGISTRY["FedAvg"])

    def test_capability_flags_match_contracts(self):
        budgeted = {n for n, s in STRATEGY_REGISTRY.items() if s.budget_aware}
        assert budgeted == {"Oracle", "GreedyUtility", "KnapsackDP"}
        assert STRATEGY_REGISTRY["Oracle"].needs_oracle
        assert STRATEGY_REGISTRY["FedL"].reliability_aware
        assert STRATEGY_REGISTRY["HardDeadline"].deadline_aware
        assert STRATEGY_REGISTRY["FedCS"].deadline_aware
        for name in PAPER_SET:
            assert STRATEGY_REGISTRY[name].paper_baseline


class TestSpecSerialization:
    def test_params_normalize_order_insensitively(self):
        a = PolicySpec("GradNorm", params={"iterations": 4, "ema": 0.25})
        b = PolicySpec("GradNorm", params=(("ema", 0.25), ("iterations", 4)))
        assert a == b
        assert a.params_dict == {"ema": 0.25, "iterations": 4}

    def test_non_scalar_params_rejected(self):
        with pytest.raises(TypeError):
            PolicySpec("GradNorm", params={"ema": [0.1, 0.2]})

    @pytest.mark.parametrize("name", sorted(STRATEGY_REGISTRY))
    def test_every_spec_roundtrips_through_json(self, name):
        spec = PolicySpec(name)
        payload = json.loads(json.dumps(dataclasses.asdict(spec)))
        rebuilt = PolicySpec(**payload)
        assert rebuilt == spec
        cfg = tiny_config()
        assert job_key(SweepJob(spec, cfg)) == job_key(SweepJob(rebuilt, cfg))

    def test_param_overrides_move_the_cache_key(self):
        cfg = tiny_config()
        plain = job_key(SweepJob(PolicySpec("GradNorm"), cfg))
        tuned = job_key(SweepJob(
            PolicySpec("GradNorm", params={"ema": 0.25}), cfg
        ))
        assert plain != tuned

    def test_cached_result_carries_the_spec(self, tmp_path):
        job = SweepJob(
            PolicySpec("GradNorm", params={"ema": 0.25, "iterations": 3}),
            tiny_config(),
        )
        result = execute_job(job)
        assert result.policy["name"] == "GradNorm"
        assert result.policy["params"] == [["ema", 0.25], ["iterations", 3]]
        cache = SweepCache(tmp_path)
        key = job_key(job)
        cache.store(key, job, result)
        loaded = cache.load(key)
        assert loaded is not None
        assert results_identical(loaded, result)
        assert loaded.policy == result.policy


class TestCliContract:
    RUN_BASE = [
        "run", "--policy", "FedAvg", "--clients", "8", "--participants", "3",
        "--epochs", "1", "--budget", "60",
    ]

    def test_unknown_policy_choice_exits_2(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "--policy", "Bogus"])
        assert excinfo.value.code == 2

    @pytest.mark.parametrize("flag", [
        "no_equals_sign",                  # malformed KEY=VALUE
        "bogus=1",                         # parameter FedAvg does not declare
        "iterations=0",                    # out of bounds
        "sample_size=[1,2]",               # non-scalar value
    ])
    def test_bad_run_param_exits_2(self, flag, capsys):
        assert main(self.RUN_BASE + ["--param", flag]) == 2
        assert "error" in capsys.readouterr().err

    def test_run_param_override_accepted(self, capsys):
        rc = main([
            "run", "--policy", "GradNorm", "--clients", "8",
            "--participants", "3", "--epochs", "1", "--budget", "60",
            "--param", "ema=0.25",
        ])
        assert rc == 0
        assert "policy=GradNorm" in capsys.readouterr().out

    def test_sweep_undeclared_param_exits_2(self, capsys):
        rc = main([
            "sweep", "--policies", "FedAvg", "FedCS",
            "--param", "nope=1",
        ])
        assert rc == 2
        assert "no selected policy declares" in capsys.readouterr().err

    def test_tournament_unknown_strategy_exits_2(self, capsys):
        assert main(["tournament", "--strategies", "Bogus"]) == 2
        assert "unknown strategy" in capsys.readouterr().err

    def test_tournament_unknown_scenario_exits_2(self, capsys):
        assert main(["tournament", "--scenarios", "bogus"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_tournament_list_matches_registry(self, capsys):
        assert main(["tournament", "--list"]) == 0
        out = capsys.readouterr().out
        lines = out.splitlines()
        split = lines.index("scenarios:")
        listed_strategies = [l.split()[0] for l in lines[1:split]]
        listed_scenarios = [l.split()[0] for l in lines[split + 1:]]
        assert listed_strategies == list(strategy_names())
        assert listed_scenarios == [s.name for s in SCENARIOS]
