"""Additional CLI coverage: sweep, chart flag, and Fair-FedL/UCB runs."""

import pytest

from repro.cli import main


class TestSweepCommand:
    def test_sweep_outputs_series(self, capsys):
        rc = main(
            [
                "sweep",
                "--budgets", "60", "120",
                "--clients", "8",
                "--participants", "3",
                "--epochs", "3",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "budget impact" in out
        assert "FedL" in out


class TestChartFlag:
    def test_compare_with_chart(self, capsys):
        rc = main(
            [
                "compare",
                "--budget", "80",
                "--clients", "8",
                "--participants", "3",
                "--epochs", "3",
                "--target", "0.1",
                "--chart",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        # The ASCII chart frame is present.
        assert "+------" in out or "+-" in out
        assert "*=FedL" in out


class TestExtendedPolicyRuns:
    @pytest.mark.parametrize("policy", ["Fair-FedL", "UCB", "Oracle"])
    def test_run_extended_policies(self, capsys, policy):
        rc = main(
            [
                "run",
                "--policy", policy,
                "--budget", "80",
                "--clients", "8",
                "--participants", "3",
                "--epochs", "3",
            ]
        )
        assert rc == 0
        assert "final_accuracy=" in capsys.readouterr().out

    def test_non_iid_flag(self, capsys):
        rc = main(
            [
                "run",
                "--non-iid",
                "--budget", "80",
                "--clients", "8",
                "--participants", "3",
                "--epochs", "3",
            ]
        )
        assert rc == 0
