"""Additional CLI coverage: sweep, chart flag, and Fair-FedL/UCB runs."""

import pytest

from repro.cli import main


class TestSweepCommand:
    def test_sweep_outputs_series(self, capsys):
        rc = main(
            [
                "sweep",
                "--budgets", "60", "120",
                "--clients", "8",
                "--participants", "3",
                "--epochs", "3",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "budget impact" in out
        assert "FedL" in out


class TestChartFlag:
    def test_compare_with_chart(self, capsys):
        rc = main(
            [
                "compare",
                "--budget", "80",
                "--clients", "8",
                "--participants", "3",
                "--epochs", "3",
                "--target", "0.1",
                "--chart",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        # The ASCII chart frame is present.
        assert "+------" in out or "+-" in out
        assert "*=FedL" in out


class TestExtendedPolicyRuns:
    @pytest.mark.parametrize("policy", ["Fair-FedL", "UCB", "Oracle"])
    def test_run_extended_policies(self, capsys, policy):
        rc = main(
            [
                "run",
                "--policy", policy,
                "--budget", "80",
                "--clients", "8",
                "--participants", "3",
                "--epochs", "3",
            ]
        )
        assert rc == 0
        assert "final_accuracy=" in capsys.readouterr().out

    def test_non_iid_flag(self, capsys):
        rc = main(
            [
                "run",
                "--non-iid",
                "--budget", "80",
                "--clients", "8",
                "--participants", "3",
                "--epochs", "3",
            ]
        )
        assert rc == 0


SIM_SMALL = [
    "--budget", "60",
    "--clients", "8",
    "--participants", "3",
    "--epochs", "2",
]


class TestSimCommandValidation:
    @pytest.mark.parametrize(
        "extra, message",
        [
            (["--aggregation", "deadline"], "requires --deadline"),
            (["--aggregation", "deadline", "--deadline", "-1"],
             "--deadline must be positive"),
            (["--aggregation", "async"], "requires --quorum"),
            (["--quorum", "3"], "--quorum only applies"),
            (["--deadline", "0.5"], "--deadline only applies"),
        ],
    )
    def test_semantic_errors_exit_2(self, capsys, extra, message):
        rc = main(["sim", *SIM_SMALL, *extra])
        assert rc == 2
        assert message in capsys.readouterr().err

    def test_unknown_fault_profile_exits_2(self):
        with pytest.raises(SystemExit) as err:
            main(["sim", *SIM_SMALL, "--faults", "gremlins"])
        assert err.value.code == 2


class TestSimCommand:
    def test_sync_run_outputs_summary(self, capsys):
        rc = main(["sim", *SIM_SMALL])
        assert rc == 0
        out = capsys.readouterr().out
        assert "engine=des" in out
        assert "aggregation=sync" in out
        assert "final_accuracy=" in out

    def test_telemetry_trace_renders_timelines(self, capsys, tmp_path):
        trace_dir = tmp_path / "trace"
        rc = main(["sim", *SIM_SMALL, "--telemetry", str(trace_dir)])
        assert rc == 0
        capsys.readouterr()
        rc = main(["trace", str(trace_dir)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "sim.round" in out          # event inventory
        assert "event-driven runtime" in out
        assert "simulated rounds" in out
        assert "busy=" in out              # per-client timeline bars

    def test_floor_violation_exits_1(self, capsys):
        # A deadline below every client's latency floors the round.
        rc = main(
            ["sim", *SIM_SMALL, "--aggregation", "deadline",
             "--deadline", "1e-6"]
        )
        assert rc == 1
        assert "participation floor" in capsys.readouterr().err


class TestSweepDesFlags:
    def test_engine_des_sweep(self, capsys):
        rc = main(
            [
                "sweep",
                "--budgets", "60",
                "--clients", "8",
                "--participants", "3",
                "--epochs", "2",
                "--policies", "FedAvg",
                "--workers", "1",
                "--engine", "des",
                "--quiet",
            ]
        )
        assert rc == 0
        assert "budget impact" in capsys.readouterr().out

    def test_sim_knobs_validated(self, capsys):
        rc = main(
            [
                "sweep",
                "--budgets", "60",
                "--aggregation", "async",
            ]
        )
        assert rc == 2
        assert "requires --quorum" in capsys.readouterr().err


class TestRobustnessFlags:
    @pytest.mark.parametrize(
        "extra, message",
        [
            (["--attack-fraction", "0.3"], "--attack-fraction only applies"),
            (["--attack", "sign-flip", "--attack-fraction", "1.5"],
             "--attack-fraction must be in (0, 1)"),
            (["--attack", "sign-flip", "--attack-fraction", "0"],
             "--attack-fraction must be in (0, 1)"),
        ],
    )
    def test_sim_attack_semantic_errors_exit_2(self, capsys, extra, message):
        rc = main(["sim", *SIM_SMALL, *extra])
        assert rc == 2
        assert message in capsys.readouterr().err

    def test_run_attack_fraction_without_attack_exits_2(self, capsys):
        rc = main(["run", *SIM_SMALL, "--attack-fraction", "0.2"])
        assert rc == 2
        assert "--attack-fraction only applies" in capsys.readouterr().err

    def test_unknown_attack_exits_2(self):
        with pytest.raises(SystemExit) as err:
            main(["run", *SIM_SMALL, "--attack", "replay"])
        assert err.value.code == 2

    def test_unknown_defense_exits_2(self):
        with pytest.raises(SystemExit) as err:
            main(["run", *SIM_SMALL, "--defense", "blockchain"])
        assert err.value.code == 2

    def test_run_attack_with_defense_prints_quarantine(self, capsys):
        rc = main(
            ["run", *SIM_SMALL, "--epochs", "4",
             "--attack", "sign-flip", "--defense", "trimmed-mean"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "attack=sign-flip" in out
        assert "defense=trimmed-mean" in out
        assert "quarantined_updates=" in out

    def test_nan_attack_without_defense_exits_1(self, capsys):
        # 49% nan attackers against a floor of 5 of 8: every round carries
        # a corrupt upload, so the undefended run must abort.
        rc = main(
            ["run", "--budget", "100", "--clients", "8",
             "--participants", "5", "--epochs", "4",
             "--attack", "nan", "--attack-fraction", "0.49"]
        )
        assert rc == 1
        assert "non-finite update" in capsys.readouterr().err

    def test_sim_nan_attack_without_defense_exits_1(self, capsys):
        rc = main(
            ["sim", "--budget", "100", "--clients", "8",
             "--participants", "5", "--epochs", "4",
             "--attack", "nan", "--attack-fraction", "0.49"]
        )
        assert rc == 1
        assert "non-finite update" in capsys.readouterr().err

    def test_sweep_attack_flags_accepted(self, capsys):
        rc = main(
            [
                "sweep",
                "--budgets", "60",
                "--clients", "8",
                "--participants", "3",
                "--epochs", "2",
                "--policies", "FedAvg",
                "--workers", "1",
                "--attack", "sign-flip",
                "--defense", "median",
                "--quiet",
            ]
        )
        assert rc == 0
        assert "budget impact" in capsys.readouterr().out

    def test_sweep_attack_fraction_validated(self, capsys):
        rc = main(
            ["sweep", "--budgets", "60", "--attack-fraction", "0.2"]
        )
        assert rc == 2
        assert "--attack-fraction only applies" in capsys.readouterr().err
