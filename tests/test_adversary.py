"""Tests for the deterministic Byzantine client behaviors."""

import numpy as np
import pytest

from repro.config import AttackConfig
from repro.datasets.synthetic import Dataset
from repro.fl.adversary import ATTACKS, Adversary
from repro.rng import RngFactory


def make_adversary(kind="sign-flip", m=10, fraction=0.2, seed=3, **kw):
    factory = RngFactory(seed)
    return Adversary(
        kind, m, fraction, factory.get("adversary.roster"), factory, **kw
    )


class TestRoster:
    def test_roster_size_is_ceil_fraction(self):
        adv = make_adversary(fraction=0.25, m=10)
        assert adv.mask.sum() == 3          # ceil(2.5)

    def test_roster_never_everyone(self):
        adv = make_adversary(fraction=0.99, m=5)
        assert 1 <= adv.mask.sum() <= 4

    def test_roster_deterministic_per_seed(self):
        a = make_adversary(seed=11)
        b = make_adversary(seed=11)
        c = make_adversary(seed=12)
        assert np.array_equal(a.mask, b.mask)
        assert a.mask.shape == c.mask.shape

    def test_is_adversary_matches_mask(self):
        adv = make_adversary()
        for k in range(adv.num_clients):
            assert adv.is_adversary(k) == bool(adv.mask[k])


class TestFromConfig:
    def test_none_kind_builds_nothing(self):
        factory = RngFactory(0)
        assert Adversary.from_config(AttackConfig(kind="none"), 10, factory) is None
        assert Adversary.from_config(None, 10, factory) is None

    def test_config_fields_forwarded(self):
        cfg = AttackConfig(kind="scale", fraction=0.3, scale=5.0, sleeper_period=4)
        adv = Adversary.from_config(cfg, 10, RngFactory(0))
        assert adv.kind == "scale"
        assert adv.scale == 5.0
        assert adv.sleeper_period == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            make_adversary(kind="replay")
        with pytest.raises(ValueError):
            make_adversary(kind="none")
        with pytest.raises(ValueError):
            make_adversary(fraction=1.0)
        with pytest.raises(ValueError):
            make_adversary(scale=0.0)


class TestCorruption:
    def test_honest_client_gets_same_object(self):
        adv = make_adversary()
        honest = int(np.flatnonzero(~adv.mask)[0])
        d = np.ones(4)
        assert adv.corrupt_update(honest, d, epoch=0) is d

    def test_sign_flip_scales_negatively(self):
        adv = make_adversary(kind="sign-flip", scale=10.0)
        bad = int(np.flatnonzero(adv.mask)[0])
        d = np.array([1.0, -2.0])
        assert np.allclose(adv.corrupt_update(bad, d, 0), [-10.0, 20.0])

    def test_scale_attack(self):
        adv = make_adversary(kind="scale", scale=3.0)
        bad = int(np.flatnonzero(adv.mask)[0])
        assert np.allclose(adv.corrupt_update(bad, np.ones(2), 0), [3.0, 3.0])

    def test_gauss_attack_deterministic_per_client(self):
        a = make_adversary(kind="gauss", seed=9)
        b = make_adversary(kind="gauss", seed=9)
        bad = int(np.flatnonzero(a.mask)[0])
        da = a.corrupt_update(bad, np.zeros(8), 0)
        db = b.corrupt_update(bad, np.zeros(8), 0)
        assert np.array_equal(da, db)
        assert not np.allclose(da, 0.0)

    def test_nan_attack_nonfinite_payload(self):
        adv = make_adversary(kind="nan")
        bad = int(np.flatnonzero(adv.mask)[0])
        out = adv.corrupt_update(bad, np.ones(5), 0)
        assert not np.isfinite(out).all()
        assert np.isinf(out[0])
        assert np.isnan(out[1:]).all()

    def test_label_flip_leaves_update_untouched(self):
        adv = make_adversary(kind="label-flip")
        bad = int(np.flatnonzero(adv.mask)[0])
        d = np.ones(3)
        assert adv.corrupt_update(bad, d, 0) is d


class TestSleeper:
    def test_sleeper_fires_every_pth_epoch(self):
        adv = make_adversary(sleeper_period=3)
        fired = [adv.active(t) for t in range(7)]
        assert fired == [False, False, True, False, False, True, False]

    def test_zero_period_always_active(self):
        adv = make_adversary(sleeper_period=0)
        assert all(adv.active(t) for t in range(5))

    def test_sleeping_attacker_is_honest(self):
        adv = make_adversary(kind="sign-flip", sleeper_period=5)
        bad = int(np.flatnonzero(adv.mask)[0])
        d = np.ones(2)
        assert adv.corrupt_update(bad, d, epoch=0) is d
        assert np.allclose(adv.corrupt_update(bad, d, epoch=4), -10.0 * d)


class TestDataPoisoning:
    def _data(self):
        return Dataset(x=np.zeros((4, 2)), y=np.array([0, 1, 2, 3]))

    def test_label_flip_mirrors_labels(self):
        adv = make_adversary(kind="label-flip")
        bad = int(np.flatnonzero(adv.mask)[0])
        flipped = adv.poison_data(bad, self._data(), 0, num_classes=4)
        assert np.array_equal(flipped.y, [3, 2, 1, 0])
        assert flipped.x is not None

    def test_label_flip_is_involution(self):
        adv = make_adversary(kind="label-flip")
        bad = int(np.flatnonzero(adv.mask)[0])
        once = adv.poison_data(bad, self._data(), 0, num_classes=4)
        twice = adv.poison_data(bad, once, 0, num_classes=4)
        assert np.array_equal(twice.y, self._data().y)

    def test_other_attacks_never_touch_data(self):
        adv = make_adversary(kind="sign-flip")
        bad = int(np.flatnonzero(adv.mask)[0])
        data = self._data()
        assert adv.poison_data(bad, data, 0, num_classes=4) is data

    def test_honest_client_data_untouched(self):
        adv = make_adversary(kind="label-flip")
        honest = int(np.flatnonzero(~adv.mask)[0])
        data = self._data()
        assert adv.poison_data(honest, data, 0, num_classes=4) is data


class TestSummary:
    def test_summary_lists_roster(self):
        adv = make_adversary(kind="gauss", fraction=0.2, m=10)
        info = adv.summary()
        assert info["attack"] == "gauss"
        assert info["adversaries"] == [int(k) for k in np.flatnonzero(adv.mask)]

    def test_all_attack_kinds_known(self):
        assert set(ATTACKS) == {
            "none", "sign-flip", "label-flip", "scale", "gauss", "nan"
        }
