"""Tests for the synthetic datasets, partitioners, and streams."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.cifar10 import CIFAR10_SHAPE, synthetic_cifar10
from repro.datasets.fmnist import FMNIST_SHAPE, synthetic_fmnist
from repro.datasets.partition import (
    dirichlet_class_distributions,
    iid_class_distributions,
    non_iid_class_distributions,
)
from repro.datasets.streams import ClientDataStream, build_client_streams
from repro.datasets.synthetic import ClassConditionalGenerator, Dataset
from repro.rng import RngFactory


class TestDataset:
    def test_validates_shapes(self):
        with pytest.raises(ValueError):
            Dataset(x=np.zeros((3, 4)), y=np.zeros(2))

    def test_subset_and_concat(self):
        ds = Dataset(x=np.arange(12.0).reshape(4, 3), y=np.arange(4))
        sub = ds.subset(np.array([0, 2]))
        assert len(sub) == 2
        both = sub.concat(sub)
        assert len(both) == 4

    def test_concat_dim_mismatch(self):
        a = Dataset(x=np.zeros((2, 3)), y=np.zeros(2, dtype=int))
        b = Dataset(x=np.zeros((2, 4)), y=np.zeros(2, dtype=int))
        with pytest.raises(ValueError):
            a.concat(b)


class TestGenerator:
    def test_sample_shapes(self, rng):
        gen = ClassConditionalGenerator((8, 8, 1), 10, rng)
        ds = gen.sample(32)
        assert ds.x.shape == (32, 64)
        assert ds.y.shape == (32,)
        assert set(np.unique(ds.y)).issubset(range(10))

    def test_pixels_in_unit_interval(self, rng):
        gen = ClassConditionalGenerator((8, 8, 3), 4, rng, noise=2.0)
        ds = gen.sample(50)
        assert np.all((ds.x >= 0.0) & (ds.x <= 1.0))

    def test_class_probs_respected(self, rng):
        gen = ClassConditionalGenerator((6, 6, 1), 3, rng)
        probs = np.array([1.0, 0.0, 0.0])
        ds = gen.sample(40, class_probs=probs)
        assert np.all(ds.y == 0)

    def test_zero_noise_separable(self, rng):
        """With no noise, nearest-prototype classification is perfect."""
        gen = ClassConditionalGenerator((10, 10, 1), 5, rng, noise=0.0)
        ds = gen.sample(100)
        protos = gen.prototypes.reshape(5, -1)
        pred = np.argmin(
            ((ds.x[:, None, :] - protos[None]) ** 2).sum(-1), axis=1
        )
        # Intensity jitter shifts samples but prototypes stay nearest.
        assert (pred == ds.y).mean() > 0.9

    def test_test_set_balanced(self, rng):
        gen = ClassConditionalGenerator((6, 6, 1), 5, rng)
        ts = gen.test_set(100)
        counts = np.bincount(ts.y, minlength=5)
        assert np.all(counts == counts[0])

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            ClassConditionalGenerator((1, 8, 1), 10, rng)
        with pytest.raises(ValueError):
            ClassConditionalGenerator((8, 8, 1), 1, rng)
        with pytest.raises(ValueError):
            ClassConditionalGenerator((8, 8, 1), 10, rng, noise=-1.0)
        gen = ClassConditionalGenerator((8, 8, 1), 3, rng)
        with pytest.raises(ValueError):
            gen.sample(0)
        with pytest.raises(ValueError):
            gen.sample(5, class_probs=np.array([1.0, 0.0]))  # wrong length
        with pytest.raises(ValueError):
            gen.sample(5, class_probs=np.array([-1.0, 1.0, 1.0]))


class TestNamedDatasets:
    def test_fmnist_geometry(self, rng):
        gen = synthetic_fmnist(rng)
        assert gen.image_shape == FMNIST_SHAPE
        assert gen.num_features == 784

    def test_cifar_geometry(self, rng):
        gen = synthetic_cifar10(rng)
        assert gen.image_shape == CIFAR10_SHAPE
        assert gen.num_features == 3072

    def test_downscale(self, rng):
        gen = synthetic_fmnist(rng, downscale=2)
        assert gen.image_shape == (14, 14, 1)

    def test_bad_downscale(self, rng):
        with pytest.raises(ValueError):
            synthetic_fmnist(rng, downscale=3)
        with pytest.raises(ValueError):
            synthetic_cifar10(rng, downscale=3)

    def test_determinism(self):
        a = synthetic_fmnist(np.random.default_rng(5)).sample(
            10, rng=np.random.default_rng(9)
        )
        b = synthetic_fmnist(np.random.default_rng(5)).sample(
            10, rng=np.random.default_rng(9)
        )
        np.testing.assert_array_equal(a.x, b.x)
        np.testing.assert_array_equal(a.y, b.y)


class TestPartitions:
    def test_iid_uniform(self):
        d = iid_class_distributions(4, 10)
        np.testing.assert_allclose(d, 0.1)

    def test_non_iid_principal_mass(self, rng):
        d = non_iid_class_distributions(8, 10, rng, principal_frac=0.8, principal_classes=2)
        assert d.shape == (8, 10)
        np.testing.assert_allclose(d.sum(axis=1), 1.0)
        # Top-2 classes of each client hold 80%.
        top2 = np.sort(d, axis=1)[:, -2:].sum(axis=1)
        np.testing.assert_allclose(top2, 0.8)

    def test_non_iid_extreme(self, rng):
        d = non_iid_class_distributions(4, 10, rng, principal_frac=1.0, principal_classes=1)
        assert np.all(np.sort(d, axis=1)[:, -1] == 1.0)

    def test_dirichlet_rows_are_distributions(self, rng):
        d = dirichlet_class_distributions(6, 10, rng, alpha=0.3)
        np.testing.assert_allclose(d.sum(axis=1), 1.0)
        assert np.all(d >= 0)

    def test_dirichlet_large_alpha_near_uniform(self, rng):
        d = dirichlet_class_distributions(50, 10, rng, alpha=1000.0)
        np.testing.assert_allclose(d, 0.1, atol=0.02)

    @pytest.mark.parametrize("fn", [iid_class_distributions])
    def test_validation_iid(self, fn):
        with pytest.raises(ValueError):
            fn(0, 10)
        with pytest.raises(ValueError):
            fn(5, 1)

    def test_validation_non_iid(self, rng):
        with pytest.raises(ValueError):
            non_iid_class_distributions(5, 10, rng, principal_frac=1.5)
        with pytest.raises(ValueError):
            non_iid_class_distributions(5, 10, rng, principal_classes=10)

    def test_validation_dirichlet(self, rng):
        with pytest.raises(ValueError):
            dirichlet_class_distributions(5, 10, rng, alpha=0.0)


class TestStreams:
    def test_draw_respects_distribution(self, rng_factory):
        gen = ClassConditionalGenerator((6, 6, 1), 4, rng_factory.get("g"))
        probs = np.array([0.0, 1.0, 0.0, 0.0])
        stream = ClientDataStream(gen, probs, rng_factory.get("s"))
        ds = stream.draw(30)
        assert np.all(ds.y == 1)

    def test_build_streams_independent(self, rng_factory):
        gen = ClassConditionalGenerator((6, 6, 1), 4, rng_factory.get("g"))
        dists = iid_class_distributions(3, 4)
        streams = build_client_streams(gen, dists, rng_factory)
        a = streams[0].draw(10)
        b = streams[1].draw(10)
        assert not np.allclose(a.x, b.x)

    def test_stream_validation(self, rng_factory):
        gen = ClassConditionalGenerator((6, 6, 1), 4, rng_factory.get("g"))
        with pytest.raises(ValueError):
            ClientDataStream(gen, np.array([1.0, 0.0]), rng_factory.get("s"))
        with pytest.raises(ValueError):
            build_client_streams(gen, np.ones((3, 7)), rng_factory)
