"""Cross-checked tests for projected gradient, interior point, and box QP.

Strategy: three independent solvers must agree on random strongly convex
QPs — collusion on wrong answers across three algorithms is implausible.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.solvers.interior_point import solve_interior_point
from repro.solvers.line_search import Filter, armijo_backtracking
from repro.solvers.projected_gradient import projected_gradient
from repro.solvers.projections import project_box
from repro.solvers.qp import solve_box_qp


def random_qp(rng: np.random.Generator, n: int):
    """A strongly convex quadratic 0.5 xᵀQx + cᵀx."""
    A = rng.normal(size=(n, n))
    Q = A @ A.T + n * np.eye(n)
    c = rng.normal(size=n)
    return Q, c


def box_constraints(n: int, lo=0.0, hi=1.0):
    A = np.vstack([np.eye(n), -np.eye(n)])
    b = np.concatenate([np.full(n, hi), -np.full(n, lo)])
    return A, b


class TestArmijo:
    def test_accepts_full_step_on_quadratic(self):
        f = lambda x: float(x @ x)
        x = np.array([1.0, 1.0])
        g = 2 * x
        t, f_new = armijo_backtracking(f, x, f(x), g, -g, step0=0.5)
        assert f_new < f(x)

    def test_backtracks_on_overshoot(self):
        f = lambda x: float(x @ x)
        x = np.array([1.0])
        g = 2 * x
        t, f_new = armijo_backtracking(f, x, f(x), g, -g, step0=100.0)
        assert t < 100.0
        assert f_new <= f(x)


class TestFilter:
    def test_empty_accepts_everything(self):
        flt = Filter()
        assert flt.is_acceptable(1.0, 1.0)

    def test_dominated_rejected(self):
        flt = Filter()
        flt.add(1.0, 1.0)
        assert not flt.is_acceptable(1.0, 1.0)
        assert not flt.is_acceptable(2.0, 2.0)

    def test_improvement_accepted(self):
        flt = Filter()
        flt.add(1.0, 1.0)
        assert flt.is_acceptable(0.5, 2.0)   # better violation
        assert flt.is_acceptable(2.0, 0.5)   # better objective... rejected by
        # theta_max? No theta_max set; phi improves enough:
        assert flt.is_acceptable(1.0, 0.5)

    def test_add_prunes_dominated_entries(self):
        flt = Filter()
        flt.add(2.0, 2.0)
        flt.add(1.0, 1.0)  # dominates the first
        assert len(flt) == 1

    def test_theta_max(self):
        flt = Filter(theta_max=1.0)
        assert not flt.is_acceptable(2.0, -100.0)


class TestBoxQP:
    def test_unconstrained_interior_solution(self):
        Q = np.diag([2.0, 2.0])
        c = np.array([-1.0, -1.0])   # optimum (0.5, 0.5)
        x = solve_box_qp(Q, c, 0.0, 1.0)
        np.testing.assert_allclose(x, [0.5, 0.5], atol=1e-8)

    def test_clipped_solution(self):
        Q = np.eye(1)
        c = np.array([-10.0])        # unconstrained optimum 10 → clipped to 1
        x = solve_box_qp(Q, c, 0.0, 1.0)
        np.testing.assert_allclose(x, [1.0])

    def test_rejects_zero_diagonal(self):
        with pytest.raises(ValueError):
            solve_box_qp(np.zeros((2, 2)), np.ones(2), 0.0, 1.0)


class TestProjectedGradient:
    def test_simple_quadratic(self):
        Q = np.diag([1.0, 4.0])
        c = np.array([-1.0, -4.0])
        res = projected_gradient(
            lambda x: 0.5 * x @ Q @ x + c @ x,
            lambda x: Q @ x + c,
            lambda x: project_box(x, 0.0, 2.0),
            x0=np.zeros(2),
        )
        assert res.converged
        np.testing.assert_allclose(res.x, [1.0, 1.0], atol=1e-5)

    def test_active_box_constraint(self):
        res = projected_gradient(
            lambda x: float((x - 5.0) @ (x - 5.0)),
            lambda x: 2 * (x - 5.0),
            lambda x: project_box(x, 0.0, 1.0),
            x0=np.zeros(3),
        )
        np.testing.assert_allclose(res.x, np.ones(3), atol=1e-8)

    @given(st.integers(min_value=2, max_value=6), st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_agrees_with_box_qp(self, n, seed):
        rng = np.random.default_rng(seed)
        Q, c = random_qp(rng, n)
        ref = solve_box_qp(Q, c, 0.0, 1.0)
        res = projected_gradient(
            lambda x: 0.5 * x @ Q @ x + c @ x,
            lambda x: Q @ x + c,
            lambda x: project_box(x, 0.0, 1.0),
            x0=np.full(n, 0.5),
            max_iters=2000,
            tol=1e-12,
        )
        f_ref = 0.5 * ref @ Q @ ref + c @ ref
        f_pg = res.fun
        assert f_pg <= f_ref + 1e-5 * (1 + abs(f_ref))


class TestInteriorPoint:
    def test_simple_quadratic_in_box(self):
        Q = np.diag([2.0, 2.0])
        c = np.array([-1.0, -1.0])
        A, b = box_constraints(2)
        res = solve_interior_point(
            lambda x: 0.5 * x @ Q @ x + c @ x,
            lambda x: Q @ x + c,
            lambda x: Q,
            A,
            b,
            x0=np.full(2, 0.5),
        )
        assert res.converged
        np.testing.assert_allclose(res.x, [0.5, 0.5], atol=1e-4)

    def test_active_constraint_solution(self):
        # min (x-5)² over [0,1] → x = 1
        A, b = box_constraints(1)
        res = solve_interior_point(
            lambda x: float((x - 5) @ (x - 5)),
            lambda x: 2 * (x - 5),
            lambda x: 2 * np.eye(1),
            A,
            b,
            x0=np.array([0.5]),
        )
        np.testing.assert_allclose(res.x, [1.0], atol=1e-3)

    def test_repairs_infeasible_start(self):
        A, b = box_constraints(2)
        res = solve_interior_point(
            lambda x: float(x @ x),
            lambda x: 2 * x,
            lambda x: 2 * np.eye(2),
            A,
            b,
            x0=np.array([5.0, -3.0]),   # far outside the box
        )
        assert res.converged
        np.testing.assert_allclose(res.x, [0.0, 0.0], atol=1e-3)

    def test_uses_fallback_interior_point(self):
        # Start on a vertex (not strictly feasible) with a provided interior.
        A, b = box_constraints(2)
        res = solve_interior_point(
            lambda x: float(x @ x),
            lambda x: 2 * x,
            lambda x: 2 * np.eye(2),
            A,
            b,
            x0=np.array([0.0, 0.0]),
            x_interior=np.array([0.5, 0.5]),
        )
        assert np.all(res.x >= -1e-6)

    def test_reports_failure_without_interior(self):
        # Empty feasible set: x <= 0 and -x <= -1 (i.e. x >= 1).
        A = np.array([[1.0], [-1.0]])
        b = np.array([0.0, -1.0])
        res = solve_interior_point(
            lambda x: float(x @ x),
            lambda x: 2 * x,
            lambda x: 2 * np.eye(1),
            A,
            b,
            x0=np.array([0.5]),
        )
        assert not res.converged

    def test_inequality_constraint_general(self):
        # min x+y st x+y >= 1, box [0, 2]²  → optimum on x+y=1.
        A = np.vstack([np.eye(2), -np.eye(2), -np.ones((1, 2))])
        b = np.concatenate([np.full(2, 2.0), np.zeros(2), [-1.0]])
        res = solve_interior_point(
            lambda x: float(x.sum()),
            lambda x: np.ones(2),
            lambda x: np.zeros((2, 2)),
            A,
            b,
            x0=np.full(2, 1.0),
        )
        assert np.isclose(res.x.sum(), 1.0, atol=1e-3)

    @given(st.integers(min_value=2, max_value=5), st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_agrees_with_box_qp(self, n, seed):
        rng = np.random.default_rng(seed)
        Q, c = random_qp(rng, n)
        ref = solve_box_qp(Q, c, 0.0, 1.0)
        A, b = box_constraints(n)
        res = solve_interior_point(
            lambda x: 0.5 * x @ Q @ x + c @ x,
            lambda x: Q @ x + c,
            lambda x: Q,
            A,
            b,
            x0=np.full(n, 0.5),
            tol=1e-10,
        )
        f_ref = 0.5 * ref @ Q @ ref + c @ ref
        assert res.fun <= f_ref + 1e-4 * (1 + abs(f_ref))
