"""End-to-end tests for the live multi-process execution engine.

The headline contract: a fault-free ``engine="live"`` experiment is
**bit-identical** to the reference loop engine — forked workers solve
with the same per-client RNG streams and the server aggregates in the
same ascending-id order, so the only thing that differs is *when*
updates arrive, never what they contain.  Plus the failure semantics
the CLI promises: semantic argument errors exit 2, participation-floor
aborts exit 1, and the calibration report has its documented shape.
"""

import dataclasses
import json

import numpy as np
import pytest

from repro.cli import main
from repro.config import LiveConfig, SimConfig
from repro.experiments.runner import run_experiment
from repro.experiments.scenarios import experiment_config, make_policy
from repro.live import LiveRoundSpec, LiveRuntime, run_calibration
from repro.rng import RngFactory
from repro.sim.faults import ParticipationFloorError, fault_profile

SMALL = dict(budget=150.0, num_clients=6, min_participants=2, max_epochs=3)


def small_config(engine="live", faults="none", **live_kwargs):
    cfg = experiment_config(**SMALL)
    return cfg.replace(
        training=dataclasses.replace(cfg.training, engine=engine),
        sim=dataclasses.replace(cfg.sim, faults=faults),
        live=LiveConfig(**live_kwargs),
    )


def run_engine(engine, faults="none", policy="FedAvg", **live_kwargs):
    cfg = small_config(engine=engine, faults=faults, **live_kwargs)
    pol = make_policy(policy, cfg, RngFactory(cfg.seed).get("cli.policy"))
    return run_experiment(pol, cfg)


class TestBitIdentity:
    def test_fault_free_live_matches_loop(self):
        loop = run_engine("loop")
        live = run_engine("live")
        np.testing.assert_array_equal(loop.final_w, live.final_w)
        assert [r.num_selected for r in loop.trace.records] == [
            r.num_selected for r in live.trace.records
        ]
        np.testing.assert_array_equal(loop.trace.accuracy, live.trace.accuracy)

    def test_fault_free_live_matches_loop_fedl(self):
        loop = run_engine("loop", policy="FedL")
        live = run_engine("live", policy="FedL")
        np.testing.assert_array_equal(loop.final_w, live.final_w)

    def test_live_latency_is_measured_not_closed_form(self):
        loop = run_engine("loop")
        live = run_engine("live")
        loop_lat = [r.epoch_latency for r in loop.trace.records]
        live_lat = [r.epoch_latency for r in live.trace.records]
        assert all(l > 0 for l in live_lat)
        assert loop_lat != live_lat  # wall-clock never equals the formula


class TestFaultedRuns:
    def test_stress_profile_completes_or_aborts_typed(self):
        try:
            result = run_engine("live", faults="stress")
        except ParticipationFloorError:
            return  # small fleets may legally hit the floor
        assert result.trace.records

    def test_flaky_uplink_retries_counted(self):
        result = run_engine("live", faults="flaky-uplink")
        assert result.trace.records
        assert np.all(np.isfinite(result.trace.accuracy))


class TestLiveRuntimeValidation:
    def test_ctor_rejects_bad_args(self):
        with pytest.raises(ValueError):
            LiveRuntime([], num_workers=1)
        clients = _tiny_clients()
        with pytest.raises(ValueError):
            LiveRuntime(clients, num_workers=0)
        with pytest.raises(ValueError):
            LiveRuntime(clients, transport="carrier-pigeon")
        with pytest.raises(ValueError):
            LiveRuntime(clients, chunk_bytes=10)

    def test_spec_validation(self):
        ids = np.arange(3)
        tau = np.full(3, 0.01)
        with pytest.raises(ValueError):
            LiveRoundSpec(ids, tau, tau, iterations=0)
        with pytest.raises(ValueError):
            LiveRoundSpec(ids, tau, tau, iterations=1, time_scale=0.0)
        with pytest.raises(ValueError):
            LiveRoundSpec(ids, tau, tau, iterations=1, aggregation="psychic")

    def test_participation_floor_checked_at_round_start(self):
        clients = _tiny_clients()
        spec = LiveRoundSpec(
            np.arange(2),
            np.full(2, 0.001),
            np.full(2, 0.001),
            iterations=1,
            faults=fault_profile("none"),
            min_participants=3,
        )
        with LiveRuntime(clients, num_workers=1) as rt:
            with pytest.raises(ParticipationFloorError):
                rt.begin_round(spec)

    def test_stochastic_faults_require_rng(self):
        clients = _tiny_clients()
        spec = LiveRoundSpec(
            np.arange(2),
            np.full(2, 0.001),
            np.full(2, 0.001),
            iterations=1,
            faults=fault_profile("stress"),
        )
        with LiveRuntime(clients, num_workers=1) as rt:
            with pytest.raises(ValueError):
                rt.begin_round(spec, rng=None)


def _tiny_clients():
    from repro.experiments.runner import Simulation

    return Simulation(experiment_config(**SMALL)).clients


class TestCalibration:
    def test_report_structure_and_identity(self, tmp_path):
        cfg = experiment_config(
            budget=120.0, num_clients=5, min_participants=2, max_epochs=2
        )
        report = run_calibration(
            cfg, policy="FedAvg", profiles=("none",), include_async=False
        )
        assert report.bit_identical is True
        assert [r.profile for r in report.rows] == ["none"]
        row = report.rows[0]
        assert row.epochs_des == row.epochs_live == 2
        assert row.live_latency > 0 and row.des_latency > 0
        out = tmp_path / "report.json"
        report.save(out)
        payload = json.loads(out.read_text())
        assert payload["schema"] == 1
        assert payload["bit_identical"] is True
        assert len(payload["rows"]) == 1
        assert "ratio" in payload["rows"][0]
        rendered = report.render()
        assert "bit-identity: PASS" in rendered
        assert "none" in rendered


class TestCliLive:
    COMMON = [
        "live", "--clients", "6", "--participants", "2",
        "--epochs", "2", "--budget", "150",
    ]

    def test_semantic_validation_exits_2(self, capsys):
        assert main(["live", "--workers", "0"]) == 2
        assert main(["live", "--time-scale", "0"]) == 2
        assert main(["live", "--round-timeout", "-1"]) == 2
        assert main(["live", "--out", "x.json"]) == 2      # needs --calibrate
        assert main(["live", "--profiles", "none"]) == 2   # needs --calibrate
        capsys.readouterr()

    def test_run_exits_0(self, capsys):
        assert main(self.COMMON) == 0
        out = capsys.readouterr().out
        assert "engine=live" in out
        assert "final_accuracy=" in out

    def test_floor_abort_exits_1(self, capsys):
        rc = main(
            [
                "live", "--clients", "4", "--participants", "4",
                "--epochs", "4", "--budget", "500", "--faults", "stress",
            ]
        )
        assert rc == 1
        assert "participation floor" in capsys.readouterr().err.lower()
