"""Property tests for the sweep cache and its content-addressed keys.

Three invariants (ISSUE 1):

1. the key is a function of job *content*, not dict/field ordering;
2. the key changes whenever any config field or policy-spec field changes;
3. a cache hit returns a result equal to a fresh run, without re-executing
   ``run_experiment``.
"""

import random
from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.experiments.sweep as sweep_mod
from repro.experiments.scenarios import experiment_config
from repro.experiments.sweep import (
    CACHE_SCHEMA_VERSION,
    PolicySpec,
    SweepCache,
    SweepJob,
    canonical_hash,
    job_fingerprint,
    job_key,
    results_identical,
    run_sweep,
)


def tiny_config(seed=0, **overrides):
    cfg = experiment_config(
        dataset="fmnist",
        iid=True,
        budget=120.0,
        seed=seed,
        num_clients=8,
        min_participants=3,
        max_epochs=3,
    )
    if overrides:
        cfg = cfg.replace(**overrides)
    return cfg


def base_job(**spec_overrides) -> SweepJob:
    return SweepJob(PolicySpec("FedL", **spec_overrides), tiny_config())


def _reorder(obj, rnd: random.Random):
    """Rebuild nested dicts with shuffled key insertion order."""
    if isinstance(obj, dict):
        keys = list(obj)
        rnd.shuffle(keys)
        return {k: _reorder(obj[k], rnd) for k in keys}
    if isinstance(obj, list):
        return [_reorder(v, rnd) for v in obj]
    return obj


class TestKeyStability:
    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=50, deadline=None)
    def test_key_invariant_under_dict_ordering(self, shuffle_seed):
        fp = job_fingerprint(base_job())
        shuffled = _reorder(fp, random.Random(shuffle_seed))
        assert canonical_hash(shuffled) == canonical_hash(fp)

    def test_key_stable_across_equal_jobs(self):
        assert job_key(base_job()) == job_key(base_job())

    def test_tuple_jobs_hash_like_sweep_jobs(self):
        assert job_key(("FedL", tiny_config())) == job_key(base_job())


# Mutations covering every layer of the job: top-level config, each nested
# config group, the policy spec, and the target.  Each must move the key.
MUTATIONS = {
    "seed": lambda j: replace(j, config=j.config.replace(seed=99)),
    "budget": lambda j: replace(j, config=j.config.replace(budget=121.0)),
    "max_epochs": lambda j: replace(j, config=j.config.replace(max_epochs=4)),
    "min_participants": lambda j: replace(
        j, config=j.config.replace(min_participants=4)
    ),
    "network.bandwidth_hz": lambda j: replace(
        j, config=j.config.replace(network=replace(j.config.network, bandwidth_hz=10e6))
    ),
    "population.failure_prob": lambda j: replace(
        j,
        config=j.config.replace(
            population=replace(j.config.population, failure_prob=0.2)
        ),
    ),
    "population.availability_model": lambda j: replace(
        j,
        config=j.config.replace(
            population=replace(j.config.population, availability_model="markov")
        ),
    ),
    "data.iid": lambda j: replace(
        j, config=j.config.replace(data=replace(j.config.data, iid=False))
    ),
    "training.sgd_lr": lambda j: replace(
        j, config=j.config.replace(training=replace(j.config.training, sgd_lr=0.06))
    ),
    "fedl.rho_max": lambda j: replace(
        j, config=j.config.replace(fedl=replace(j.config.fedl, rho_max=9.0))
    ),
    "policy.name": lambda j: replace(j, policy=replace(j.policy, name="FedAvg")),
    "policy.iterations": lambda j: replace(
        j, policy=replace(j.policy, iterations=3)
    ),
    "policy.deadline_s": lambda j: replace(
        j, policy=replace(j.policy, deadline_s=1.5)
    ),
    "policy.rng_stream": lambda j: replace(
        j, policy=replace(j.policy, rng_stream="policy.other")
    ),
    "policy.engine": lambda j: replace(j, policy=replace(j.policy, engine="des")),
    "policy.aggregation": lambda j: replace(
        j,
        policy=replace(
            j.policy, engine="des", aggregation="async", quorum=2
        ),
    ),
    "policy.fault_profile": lambda j: replace(
        j, policy=replace(j.policy, engine="des", fault_profile="churn")
    ),
    "target_accuracy": lambda j: replace(j, target_accuracy=0.9),
}


class TestKeySensitivity:
    @pytest.mark.parametrize("field", sorted(MUTATIONS))
    def test_key_changes_with_field(self, field):
        job = base_job()
        assert job_key(MUTATIONS[field](job)) != job_key(job)

    @given(
        seed_a=st.integers(0, 2**31 - 1),
        seed_b=st.integers(0, 2**31 - 1),
        budget_a=st.floats(1.0, 1e6, allow_nan=False, allow_infinity=False),
        budget_b=st.floats(1.0, 1e6, allow_nan=False, allow_infinity=False),
    )
    @settings(max_examples=50, deadline=None)
    def test_key_equality_tracks_job_equality(self, seed_a, seed_b, budget_a, budget_b):
        a = SweepJob(PolicySpec("FedAvg"), tiny_config(seed=seed_a, budget=budget_a))
        b = SweepJob(PolicySpec("FedAvg"), tiny_config(seed=seed_b, budget=budget_b))
        assert (job_key(a) == job_key(b)) == (a == b)


class TestCacheRoundTrip:
    def jobs(self):
        return [
            SweepJob(PolicySpec("FedAvg"), tiny_config()),
            SweepJob(PolicySpec("FedL"), tiny_config(seed=1)),
        ]

    def test_hit_equals_fresh_run(self, tmp_path):
        cache = SweepCache(tmp_path / "cache")
        first_events, second_events = [], []
        first = run_sweep(self.jobs(), workers=1, cache=cache,
                          progress=first_events.append)
        second = run_sweep(self.jobs(), workers=1, cache=cache,
                           progress=second_events.append)
        fresh = run_sweep(self.jobs(), workers=1)
        assert [e.cached for e in first_events] == [False, False]
        assert [e.cached for e in second_events] == [True, True]
        for a, b, c in zip(first, second, fresh):
            assert results_identical(a, b)
            assert results_identical(b, c)

    def test_full_hit_never_calls_run_experiment(self, tmp_path, monkeypatch):
        cache = SweepCache(tmp_path / "cache")
        jobs = self.jobs()
        warm = run_sweep(jobs, workers=1, cache=cache)

        def boom(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("run_experiment executed on a full cache hit")

        monkeypatch.setattr(sweep_mod, "run_experiment", boom)
        served = run_sweep(jobs, workers=1, cache=cache)
        for a, b in zip(warm, served):
            assert results_identical(a, b)

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = SweepCache(tmp_path / "cache")
        jobs = self.jobs()
        run_sweep(jobs, workers=1, cache=cache)
        for path in cache.root.glob("*.json"):
            path.write_text("{not json")
        events = []
        rerun = run_sweep(jobs, workers=1, cache=cache, progress=events.append)
        assert [e.cached for e in events] == [False, False]
        assert all(r is not None for r in rerun)

    def test_stale_cache_schema_is_a_miss(self, tmp_path):
        cache = SweepCache(tmp_path / "cache")
        jobs = self.jobs()
        run_sweep(jobs, workers=1, cache=cache)
        import json

        for path in cache.root.glob("*.json"):
            payload = json.loads(path.read_text())
            payload["cache_schema"] = CACHE_SCHEMA_VERSION + 1
            path.write_text(json.dumps(payload))
        events = []
        run_sweep(jobs, workers=1, cache=cache, progress=events.append)
        assert [e.cached for e in events] == [False, False]

    def test_clear_and_len(self, tmp_path):
        cache = SweepCache(tmp_path / "cache")
        run_sweep(self.jobs(), workers=1, cache=cache)
        assert len(cache) == 2
        assert cache.clear() == 2
        assert len(cache) == 0


class TestPolicySpecOverlay:
    """The event-driven-runtime fields overlay the job config."""

    def test_no_overrides_returns_config_unchanged(self):
        cfg = tiny_config()
        assert PolicySpec("FedL").apply_to(cfg) is cfg

    def test_overlay_sets_engine_and_sim(self):
        spec = PolicySpec(
            "FedL",
            engine="des",
            aggregation="deadline",
            sim_deadline_s=0.5,
            fault_profile="flaky-uplink",
        )
        cfg = spec.apply_to(tiny_config())
        assert cfg.training.engine == "des"
        assert cfg.sim.aggregation == "deadline"
        assert cfg.sim.deadline_s == 0.5
        assert cfg.sim.faults == "flaky-uplink"

    def test_inconsistent_overlay_raises(self):
        # SimConfig validation re-runs on construction.
        with pytest.raises(ValueError, match="quorum"):
            PolicySpec("FedL", aggregation="async").apply_to(tiny_config())

    def test_des_job_executes_bit_identically_to_direct_config(self):
        from dataclasses import replace as dc_replace

        from repro.experiments.sweep import execute_job

        spec_job = SweepJob(PolicySpec("FedL", engine="des"), tiny_config())
        direct_cfg = tiny_config().replace(
            training=dc_replace(tiny_config().training, engine="des")
        )
        direct_job = SweepJob(PolicySpec("FedL"), direct_cfg)
        assert results_identical(execute_job(spec_job), execute_job(direct_job))


class TestRobustnessOverlay:
    """--attack/--attack-fraction/--defense overlay the job config."""

    def test_overlay_sets_attack_and_defense(self):
        spec = PolicySpec(
            "FedL", attack="sign-flip", attack_fraction=0.3, defense="median"
        )
        cfg = spec.apply_to(tiny_config())
        assert cfg.attack.kind == "sign-flip"
        assert cfg.attack.fraction == 0.3
        assert cfg.defense.aggregator == "median"

    def test_overlay_defaults_leave_config_unchanged(self):
        cfg = tiny_config()
        assert PolicySpec("FedL").apply_to(cfg) is cfg

    def test_invalid_attack_overlay_raises(self):
        with pytest.raises(ValueError, match="attack"):
            PolicySpec("FedL", attack="replay").apply_to(tiny_config())

    def test_attack_fields_change_cache_key(self):
        base = SweepJob(PolicySpec("FedL"), tiny_config())
        attacked = SweepJob(
            PolicySpec("FedL", attack="sign-flip", defense="median"),
            tiny_config(),
        )
        assert job_key(base) != job_key(attacked)
