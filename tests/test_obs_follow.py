"""Live trace tailing: partial lines, truncation/rotation, missing manifest, determinism."""

import json

from repro.obs import Telemetry, TraceFollower, follow_trace, sparkline, use_telemetry
from repro.obs.hub import MANIFEST_NAME


def event_line(kind, run="r0", epoch=0, data=None):
    return (
        json.dumps(
            {"v": 1, "seq": 0, "kind": kind, "run": run, "epoch": epoch,
             "data": data or {}},
            ensure_ascii=False,
        )
        + "\n"
    )


def epoch_event(epoch, run="r0", acc=0.5, lat=0.1, budget=10.0, quar=0):
    return event_line(
        "epoch.complete",
        run=run,
        epoch=epoch,
        data={
            "test_accuracy": acc,
            "epoch_latency": lat,
            "remaining_budget": budget,
            "num_quarantined": quar,
        },
    )


class TestSparkline:
    def test_width_and_extremes(self):
        line = sparkline([0.0, 1.0, 0.5], width=20)
        assert len(line) == 3
        assert line[0] == " " and line[1] == "@"

    def test_constant_series_is_midpoint(self):
        mid = len("abc")  # three values in, three chars out
        line = sparkline([2.0, 2.0, 2.0])
        assert len(line) == mid
        assert len(set(line)) == 1  # flat series renders one level

    def test_empty_and_nonfinite(self):
        assert sparkline([]) == ""
        assert sparkline([float("nan"), float("inf")]) == ""


class TestPartialLines:
    def test_partial_trailing_line_buffers_until_complete(self, tmp_path):
        events = tmp_path / "events-main.jsonl"
        full = epoch_event(0)
        events.write_bytes(full[:20].encode())
        follower = TraceFollower(tmp_path)
        assert follower.poll() == []  # incomplete line: nothing rendered
        events.write_bytes(full.encode())
        lines = follower.poll()
        assert len(lines) == 1
        assert "t=   0" in lines[0] and "acc=0.5000" in lines[0]

    def test_split_multibyte_utf8_survives(self, tmp_path):
        events = tmp_path / "events-main.jsonl"
        full = epoch_event(0, run="runé").encode("utf-8")
        # Cut inside the 2-byte UTF-8 sequence for e-acute.
        cut = full.index(b"\xc3") + 1
        events.write_bytes(full[:cut])
        follower = TraceFollower(tmp_path)
        assert follower.poll() == []
        events.write_bytes(full)
        lines = follower.poll()
        assert len(lines) == 1 and "runé" in lines[0]

    def test_byte_by_byte_feed(self, tmp_path):
        events = tmp_path / "events-main.jsonl"
        full = (epoch_event(0) + epoch_event(1, acc=0.6)).encode()
        follower = TraceFollower(tmp_path)
        rendered = []
        for i in range(1, len(full) + 1):
            events.write_bytes(full[:i])
            rendered.extend(follower.poll())
        assert len(rendered) == 2
        assert follower.malformed == 0


class TestTruncation:
    def test_shrunk_file_restarts_from_zero(self, tmp_path):
        events = tmp_path / "events-main.jsonl"
        events.write_text(epoch_event(0) + epoch_event(1))
        follower = TraceFollower(tmp_path)
        assert len(follower.poll()) == 2
        events.write_text(epoch_event(0, run="r1"))  # rotated in place
        lines = follower.poll()
        assert any("truncated" in line for line in lines)
        assert any("r1" in line for line in lines)


class TestRotation:
    def test_replaced_file_grown_past_offset_restarts(self, tmp_path):
        """True rotation: the path now names a *different* file (new
        inode) that is already larger than the old read offset — the
        size check alone cannot see it; identity must."""
        events = tmp_path / "events-main.jsonl"
        events.write_text(epoch_event(0) + epoch_event(1))
        follower = TraceFollower(tmp_path)
        assert len(follower.poll()) == 2
        events.rename(tmp_path / "events-main.jsonl.1")
        events.write_text(
            epoch_event(0, run="r1") + epoch_event(1, run="r1")
            + epoch_event(2, run="r1")  # longer than the old file
        )
        lines = follower.poll()
        assert any("rotated" in line for line in lines)
        assert sum("r1" in line and "t=" in line for line in lines) == 3

    def test_rotation_discards_stale_partial_buffer(self, tmp_path):
        """A partial line buffered from the old file must not be glued
        onto the first line of its replacement."""
        events = tmp_path / "events-main.jsonl"
        events.write_bytes(epoch_event(0).encode() + b'{"v": 1, "seq"')
        follower = TraceFollower(tmp_path)
        assert len(follower.poll()) == 1  # partial tail stays buffered
        events.rename(tmp_path / "events-main.jsonl.1")
        events.write_text(epoch_event(0, run="fresh") + epoch_event(1, run="fresh"))
        lines = follower.poll()
        assert any("rotated" in line for line in lines)
        assert sum("fresh" in line for line in lines) == 2
        assert follower.malformed == 0


class TestCompletionSignal:
    def test_not_done_without_manifest(self, tmp_path):
        events = tmp_path / "events-main.jsonl"
        events.write_text(epoch_event(0))
        follower = TraceFollower(tmp_path)
        follower.poll()
        follower.poll()  # drained, but no manifest: the run may still be live
        assert follower.done is False

    def test_done_needs_manifest_and_drained_poll(self, tmp_path):
        events = tmp_path / "events-main.jsonl"
        events.write_text(epoch_event(0))
        (tmp_path / MANIFEST_NAME).write_text("{}")
        follower = TraceFollower(tmp_path)
        follower.poll()  # reads bytes: not yet done
        assert follower.done is False
        follower.poll()  # second poll drains nothing
        assert follower.done is True

    def test_missing_directory_never_done(self, tmp_path):
        follower = TraceFollower(tmp_path / "nope")
        assert follower.poll() == []
        assert follower.done is False


class TestEventHandling:
    def test_run_filter(self, tmp_path):
        events = tmp_path / "events-main.jsonl"
        events.write_text(epoch_event(0, run="keep") + epoch_event(0, run="drop"))
        follower = TraceFollower(tmp_path, run="keep")
        lines = follower.poll()
        assert len(lines) == 1 and "keep" in lines[0]

    def test_malformed_lines_skipped_and_counted(self, tmp_path):
        events = tmp_path / "events-main.jsonl"
        events.write_text("{broken\n[1,2]\n" + epoch_event(0))
        follower = TraceFollower(tmp_path)
        assert len(follower.poll()) == 1
        assert follower.malformed == 2

    def test_regret_fit_budget_accumulate(self, tmp_path):
        events = tmp_path / "events-main.jsonl"
        events.write_text(
            event_line("learner.descent", data={"objective": 0.25,
                                                "budget_headroom": 7.5})
            + event_line("learner.ascent", data={"fit_increment": 1.5})
            + epoch_event(0, budget=None)
        )
        follower = TraceFollower(tmp_path)
        lines = [l for l in follower.poll() if "t=" in l]
        assert "regret=0.250" in lines[0]
        assert "fit=1.500" in lines[0]
        assert "budget=7.5" in lines[0]  # falls back to descent headroom

    def test_run_complete_renders_summary(self, tmp_path):
        events = tmp_path / "events-main.jsonl"
        events.write_text(
            epoch_event(0)
            + event_line("run.complete", data={"stop_reason": "budget_exhausted"})
        )
        follower = TraceFollower(tmp_path)
        lines = follower.poll()
        assert any("run complete" in l and "budget_exhausted" in l for l in lines)
        assert follower.runs_completed == 1

    def test_rendering_is_deterministic(self, tmp_path):
        content = (
            epoch_event(0) + epoch_event(1, acc=0.6)
            + event_line("run.complete", data={"stop_reason": "done"})
        )
        outputs = []
        for sub in ("a", "b"):
            d = tmp_path / sub
            d.mkdir()
            (d / "events-main.jsonl").write_text(content)
            outputs.append(TraceFollower(d).poll())
        assert outputs[0] == outputs[1]


class TestFollowTrace:
    def test_follows_real_run_to_completion(self, tmp_path, capsys):
        hub = Telemetry.for_directory(tmp_path, run_id="r0")
        with use_telemetry(hub):
            hub.emit(
                "epoch.complete", epoch=0,
                data={"test_accuracy": 0.4, "epoch_latency": 0.1,
                      "remaining_budget": 5.0, "num_quarantined": 0},
            )
            hub.emit("run.complete", epoch=0, data={"stop_reason": "done"})
        hub.finalize(meta={})
        code = follow_trace(tmp_path, poll_s=0.01, sleep=lambda s: None)
        out = capsys.readouterr().out
        assert code == 0
        assert "t=   0" in out
        assert "[follow] complete:" in out

    def test_timeout_without_events_exits_1(self, tmp_path, capsys):
        code = follow_trace(
            tmp_path / "nothing", poll_s=1.0, timeout_s=2.0,
            sleep=lambda s: None,
        )
        assert code == 1
        assert "timeout" in capsys.readouterr().out
