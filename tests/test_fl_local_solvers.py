"""Tests for the local-solver variants: FedProx and inner momentum."""

import dataclasses

import numpy as np
import pytest

from repro.datasets.synthetic import ClassConditionalGenerator
from repro.fl.client import FLClient
from repro.fl.dane import DaneWorkspace, dane_local_step
from repro.fl.round_runner import run_federated_round
from repro.fl.server import FLServer
from repro.nn.models import build_model
from repro.experiments.runner import run_experiment
from repro.experiments.scenarios import experiment_config, make_policy
from repro.rng import RngFactory


@pytest.fixture
def setup(rng_factory):
    gen = ClassConditionalGenerator((6, 6, 1), 4, rng_factory.get("gen"), noise=0.3)
    model = build_model("mlp", 36, 4, rng_factory.get("model"), hidden=(8,))
    data = gen.sample(30, rng=rng_factory.get("d"))
    return gen, model, data


class TestFedProxClient:
    def test_fedprox_trains(self, setup, rng_factory):
        gen, model, data = setup
        client = FLClient(
            0, model, rng_factory.get("c"), local_solver="fedprox", sgd_steps=6
        )
        client.set_data(data)
        w = model.get_params()
        g = client.local_grad(w)
        d, eta, traj = client.train_iteration(w, g)
        assert traj[-1] < traj[0]  # local objective decreased
        assert np.any(d != 0)

    def test_fedprox_ignores_global_gradient(self, setup, rng_factory):
        """FedProx has no gradient-correction term: the update must not
        depend on the broadcast global gradient."""
        gen, model, data = setup
        w = model.get_params()

        def update_with(global_grad, seed):
            client = FLClient(
                0, model, np.random.default_rng(seed),
                local_solver="fedprox", sgd_steps=4,
            )
            client.set_data(data)
            d, _, _ = client.train_iteration(w, global_grad)
            return d

        d1 = update_with(np.zeros_like(w), seed=3)
        d2 = update_with(np.ones_like(w) * 100.0, seed=3)
        np.testing.assert_allclose(d1, d2)

    def test_dane_uses_global_gradient(self, setup, rng_factory):
        gen, model, data = setup
        w = model.get_params()

        def update_with(global_grad, seed):
            client = FLClient(
                0, model, np.random.default_rng(seed),
                local_solver="dane", sgd_steps=4,
            )
            client.set_data(data)
            d, _, _ = client.train_iteration(w, global_grad)
            return d

        d1 = update_with(np.zeros_like(w), seed=3)
        d2 = update_with(np.ones_like(w), seed=3)
        assert not np.allclose(d1, d2)

    def test_unknown_solver_rejected(self, setup, rng_factory):
        gen, model, data = setup
        with pytest.raises(ValueError):
            FLClient(0, model, rng_factory.get("c"), local_solver="scaffold")


class TestMomentum:
    def test_momentum_validation(self, setup, rng_factory):
        gen, model, data = setup
        with pytest.raises(ValueError):
            FLClient(0, model, rng_factory.get("c"), momentum=1.0)
        w = model.get_params()
        ws = DaneWorkspace(w, np.zeros_like(w), np.zeros_like(w), 1.0, 0.0)
        with pytest.raises(ValueError):
            dane_local_step(model, ws, data, 3, 0.05, 16,
                            np.random.default_rng(0), momentum=-0.1)

    def test_momentum_changes_trajectory(self, setup, rng_factory):
        gen, model, data = setup
        w = model.get_params()
        g = np.zeros_like(w)
        ws = DaneWorkspace(w, g, g, sigma1=1.0, sigma2=0.0)
        d_plain, _ = dane_local_step(
            model, ws, data, 6, 0.05, 64, np.random.default_rng(1), momentum=0.0
        )
        d_mom, _ = dane_local_step(
            model, ws, data, 6, 0.05, 64, np.random.default_rng(1), momentum=0.8
        )
        assert not np.allclose(d_plain, d_mom)

    def test_momentum_accelerates_surrogate_decrease(self, setup, rng_factory):
        gen, model, data = setup
        w = model.get_params()
        g = np.zeros_like(w)
        ws = DaneWorkspace(w, g, g, sigma1=1.0, sigma2=0.0)
        _, traj_plain = dane_local_step(
            model, ws, data, 10, 0.02, 64, np.random.default_rng(1), momentum=0.0
        )
        _, traj_mom = dane_local_step(
            model, ws, data, 10, 0.02, 64, np.random.default_rng(1), momentum=0.7
        )
        assert traj_mom[-1] < traj_plain[-1]


class TestEndToEnd:
    @pytest.mark.parametrize("solver", ["dane", "fedprox"])
    def test_experiment_completes(self, solver):
        cfg = experiment_config(budget=120.0, num_clients=10, max_epochs=6)
        cfg = cfg.replace(
            training=dataclasses.replace(cfg.training, local_solver=solver)
        )
        pol = make_policy("FedAvg", cfg, RngFactory(0).get("p"))
        res = run_experiment(pol, cfg)
        assert res.trace.final_accuracy > res.trace.accuracy[0] - 0.05

    def test_momentum_experiment_completes(self):
        cfg = experiment_config(budget=120.0, num_clients=10, max_epochs=6)
        cfg = cfg.replace(
            training=dataclasses.replace(cfg.training, momentum=0.6)
        )
        pol = make_policy("FedAvg", cfg, RngFactory(0).get("p"))
        res = run_experiment(pol, cfg)
        assert len(res.trace) >= 1

    def test_config_validation(self):
        import dataclasses as dc
        from repro.config import TrainingConfig

        with pytest.raises(ValueError):
            TrainingConfig(local_solver="scaffold")
        with pytest.raises(ValueError):
            TrainingConfig(momentum=1.0)
