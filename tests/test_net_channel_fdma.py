"""Tests for the channel model and FDMA rate/allocation."""

import numpy as np
import pytest

from repro.config import NetworkConfig
from repro.net.channel import ChannelModel, ChannelState
from repro.net.fdma import achievable_rate, allocate_bandwidth, equal_share_bandwidth
from repro.net.pathloss import dbm_to_watt


def make_channel(rng, distances=(50.0, 200.0, 480.0), **kwargs):
    cfg = NetworkConfig(**kwargs)
    return ChannelModel(np.asarray(distances), cfg, rng)


class TestChannelState:
    def test_validates_shapes(self):
        with pytest.raises(ValueError):
            ChannelState(
                gains=np.ones(3),
                tx_power_watt=np.ones(2),
                noise_psd_watt_hz=1e-20,
            )

    def test_rejects_nonpositive_gains(self):
        with pytest.raises(ValueError):
            ChannelState(
                gains=np.array([0.0]),
                tx_power_watt=np.array([1.0]),
                noise_psd_watt_hz=1e-20,
            )

    def test_snr_per_hz_formula(self):
        st = ChannelState(
            gains=np.array([2e-10]),
            tx_power_watt=np.array([0.01]),
            noise_psd_watt_hz=4e-21,
        )
        assert st.snr_per_hz()[0] == pytest.approx(2e-10 * 0.01 / 4e-21)


class TestChannelModel:
    def test_nearer_client_stronger_on_average(self, rng):
        ch = make_channel(rng)
        mean = ch.mean_state()
        assert mean.gains[0] > mean.gains[1] > mean.gains[2]

    def test_min_distance_clamp(self, rng):
        ch = make_channel(rng, distances=(0.0, 100.0))
        assert ch.distances_m[0] == NetworkConfig().min_distance_m

    def test_shadowing_ar1_is_correlated(self, rng):
        ch = make_channel(rng, distances=tuple([250.0] * 200))
        s1 = np.log10(ch.sample().gains)
        s2 = np.log10(ch.sample().gains)
        corr = np.corrcoef(s1, s2)[0, 1]
        assert corr > 0.6  # φ = 0.9 by default

    def test_zero_corr_is_iid(self, rng):
        ch = make_channel(rng, distances=tuple([250.0] * 300), shadowing_corr=0.0)
        s1 = np.log10(ch.sample().gains)
        s2 = np.log10(ch.sample().gains)
        corr = np.corrcoef(s1, s2)[0, 1]
        assert abs(corr) < 0.25

    def test_stationary_std_matches_config(self, rng):
        ch = make_channel(rng, distances=tuple([250.0] * 2000))
        for _ in range(20):  # burn in
            st = ch.sample()
        shadow_db = -10.0 * np.log10(st.gains) - 128.1 - 37.6 * np.log10(0.25)
        assert np.std(shadow_db) == pytest.approx(8.0, rel=0.15)

    def test_rejects_negative_distance(self, rng):
        with pytest.raises(ValueError):
            make_channel(rng, distances=(-5.0,))


class TestAchievableRate:
    def test_shannon_formula_hand_check(self):
        # b = 1 MHz, snr/Hz = 1 MHz → r = 1e6 · log2(2) = 1e6 bit/s.
        assert achievable_rate(1e6, 1e6) == pytest.approx(1e6)

    def test_zero_bandwidth_zero_rate(self):
        assert achievable_rate(0.0, 1e6) == 0.0

    def test_monotone_in_bandwidth(self):
        r1 = achievable_rate(1e6, 5e6)
        r2 = achievable_rate(2e6, 5e6)
        assert r2 > r1

    def test_diminishing_returns(self):
        # Concavity: doubling bandwidth less than doubles the rate.
        r1 = achievable_rate(1e6, 5e6)
        r2 = achievable_rate(2e6, 5e6)
        assert r2 < 2 * r1

    def test_capacity_limit(self):
        # As b → ∞, r → snr/ln2.
        snr = 1e6
        r = achievable_rate(1e12, snr)
        assert r == pytest.approx(snr / np.log(2), rel=1e-3)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            achievable_rate(-1.0, 1.0)
        with pytest.raises(ValueError):
            achievable_rate(1.0, -1.0)


class TestBandwidthAllocation:
    def _state(self, n=4):
        gains = np.geomspace(1e-9, 1e-12, n)
        return ChannelState(
            gains=gains,
            tx_power_watt=np.full(n, float(dbm_to_watt(10.0))),
            noise_psd_watt_hz=float(dbm_to_watt(-174.0)),
        )

    def test_equal_share_value(self):
        assert equal_share_bandwidth(20e6, 4) == pytest.approx(5e6)

    def test_equal_share_rejects_bad(self):
        with pytest.raises(ValueError):
            equal_share_bandwidth(20e6, 0)
        with pytest.raises(ValueError):
            equal_share_bandwidth(0.0, 3)

    def test_equal_policy_masks_unselected(self):
        st = self._state()
        sel = np.array([True, False, True, False])
        bw = allocate_bandwidth(st, sel, 20e6, 80e3, policy="equal")
        assert bw[1] == 0.0 and bw[3] == 0.0
        assert bw[0] == pytest.approx(10e6)

    def test_no_selection_all_zero(self):
        st = self._state()
        bw = allocate_bandwidth(st, np.zeros(4, bool), 20e6, 80e3)
        np.testing.assert_array_equal(bw, np.zeros(4))

    def test_min_latency_uses_full_band(self):
        st = self._state()
        sel = np.ones(4, bool)
        bw = allocate_bandwidth(st, sel, 20e6, 80e3, policy="min_latency")
        assert bw.sum() == pytest.approx(20e6, rel=1e-6)

    def test_min_latency_gives_weak_clients_more(self):
        st = self._state()
        sel = np.ones(4, bool)
        bw = allocate_bandwidth(st, sel, 20e6, 80e3, policy="min_latency")
        # gains decrease with index → bandwidth must increase
        assert bw[3] > bw[0]

    def test_min_latency_lowers_max_latency(self):
        from repro.net.fdma import achievable_rate as rate
        st = self._state()
        sel = np.ones(4, bool)
        s = 80e3
        eq = allocate_bandwidth(st, sel, 20e6, s, policy="equal")
        ml = allocate_bandwidth(st, sel, 20e6, s, policy="min_latency")
        snr = st.snr_per_hz()
        lat_eq = (s / np.asarray(rate(eq, snr))).max()
        lat_ml = (s / np.asarray(rate(ml, snr))).max()
        assert lat_ml <= lat_eq * 1.001

    def test_unknown_policy_raises(self):
        with pytest.raises(ValueError):
            allocate_bandwidth(self._state(), np.ones(4, bool), 20e6, 80e3, policy="prop")
