"""Edge-case tests for the experiment runner's control flow."""

import dataclasses

import numpy as np
import pytest

from repro.baselines.base import Decision, EpochContext, RoundFeedback
from repro.experiments.runner import Simulation, run_experiment
from repro.experiments.scenarios import experiment_config, make_policy
from repro.rng import RngFactory


class SelectUnavailablePolicy:
    """Misbehaving policy: always picks client 0 whether available or not."""

    name = "Misbehaving"

    def select(self, ctx: EpochContext) -> Decision:
        mask = np.zeros(ctx.num_clients, dtype=bool)
        mask[0] = True
        return Decision(selected=mask, iterations=1)

    def update(self, feedback: RoundFeedback) -> None:
        pass


class OverspendPolicy:
    """Selects everyone every epoch, ignoring the budget."""

    name = "Overspender"

    def select(self, ctx: EpochContext) -> Decision:
        return Decision(selected=ctx.available.copy(), iterations=1)

    def update(self, feedback: RoundFeedback) -> None:
        pass


class TestStopConditions:
    def test_no_selection_stop(self):
        """If the decision intersects availability to nothing, the run
        stops with 'no_selection' instead of crashing."""
        cfg = experiment_config(budget=100.0, num_clients=6, min_participants=1,
                                max_epochs=10)
        # Force client 0 unavailable by monkeypatching the availability
        # process with a fixed mask.
        sim = Simulation(cfg)

        class FixedAvailability:
            def sample(self_inner):
                mask = np.ones(6, dtype=bool)
                mask[0] = False
                return mask

        sim.availability = FixedAvailability()
        res = run_experiment(SelectUnavailablePolicy(), cfg, simulation=sim)
        assert res.stop_reason == "no_selection"
        assert len(res.trace) == 0

    def test_overspend_never_breaks_accounting(self):
        cfg = experiment_config(budget=100.0, num_clients=10, min_participants=2,
                                max_epochs=20)
        res = run_experiment(OverspendPolicy(), cfg)
        assert res.trace.total_spend <= 100.0 + 1e-6
        assert res.stop_reason == "budget_exhausted"

    def test_max_epochs_stop(self):
        cfg = experiment_config(budget=1e9, num_clients=8, min_participants=2,
                                max_epochs=3)
        pol = make_policy("FedAvg", cfg, RngFactory(0).get("p"))
        res = run_experiment(pol, cfg)
        assert res.stop_reason == "max_epochs"
        assert len(res.trace) == 3

    def test_final_w_matches_server(self):
        cfg = experiment_config(budget=100.0, num_clients=8, min_participants=2,
                                max_epochs=3)
        sim = Simulation(cfg)
        pol = make_policy("FedAvg", cfg, RngFactory(0).get("p"))
        res = run_experiment(pol, cfg, simulation=sim)
        np.testing.assert_array_equal(res.final_w, sim.server.w)


class TestSimulationWiring:
    def test_compression_spec_built_from_config(self):
        cfg = experiment_config(budget=100.0, num_clients=6, max_epochs=2)
        cfg = cfg.replace(
            training=dataclasses.replace(cfg.training, compression="topk")
        )
        sim = Simulation(cfg)
        assert sim.compression is not None
        assert sim.compression.scheme == "topk"

    def test_no_compression_spec_by_default(self):
        sim = Simulation(experiment_config(budget=100.0, num_clients=6, max_epochs=2))
        assert sim.compression is None

    def test_tau_oracle_passed_to_context(self):
        """The oracle policy requires tau_oracle; a completed oracle run
        proves the runner wires it."""
        cfg = experiment_config(budget=100.0, num_clients=8, min_participants=2,
                                max_epochs=3)
        pol = make_policy("Oracle", cfg, RngFactory(0).get("p"))
        res = run_experiment(pol, cfg)
        assert len(res.trace) >= 1

    def test_trace_epoch_indices_contiguous(self):
        cfg = experiment_config(budget=200.0, num_clients=8, min_participants=2,
                                max_epochs=6)
        pol = make_policy("FedAvg", cfg, RngFactory(0).get("p"))
        res = run_experiment(pol, cfg)
        np.testing.assert_array_equal(
            res.trace.rounds, np.arange(len(res.trace))
        )
