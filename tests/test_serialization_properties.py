"""Property tests for the wire/checkpoint serialization surfaces.

The live engine trusts :func:`repro.nn.serialization.encode_payload` /
:func:`decode_payload` with every model update it ships over a socket,
so the contract is pinned generatively:

* round-trip identity — arbitrary metadata and arrays (any dtype from
  the supported pool, any rank, including 0-d and empty) come back
  bit-identical with native endianness;
* *every* strict prefix of a frame raises the typed
  :class:`TruncatedPayloadError` (a torn socket read can never yield
  garbage arrays);
* any single corrupted byte raises :class:`PayloadError` (the trailing
  CRC32 catches whatever the structural checks miss);
* checkpoint save/load is bit-exact for arbitrary weight vectors and
  round-trips the architecture spec.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.models import build_model
from repro.nn.serialization import (
    PayloadError,
    TruncatedPayloadError,
    decode_payload,
    encode_payload,
    load_checkpoint,
    save_checkpoint,
)

DTYPES = ("f8", "f4", "i8", "i4", "u2", "?")

json_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**53), max_value=2**53),
    st.floats(allow_nan=False, allow_infinity=False, width=64),
    st.text(max_size=20),
)

metas = st.dictionaries(st.text(max_size=10), json_scalars, max_size=4)

shapes = st.lists(st.integers(min_value=0, max_value=4), max_size=3).map(tuple)


@st.composite
def array_dicts(draw):
    names = draw(
        st.lists(st.text(min_size=1, max_size=8), unique=True, max_size=4)
    )
    rng = np.random.default_rng(draw(st.integers(0, 2**31)))
    out = {}
    for name in names:
        dtype = np.dtype(draw(st.sampled_from(DTYPES)))
        shape = draw(shapes)
        raw = rng.integers(0, 100, size=shape)
        out[name] = raw.astype(dtype)
    return out


class TestPayloadProperties:
    @settings(max_examples=60, deadline=None)
    @given(meta=metas, arrays=array_dicts())
    def test_round_trip_identity(self, meta, arrays):
        meta_out, arrays_out = decode_payload(encode_payload(meta, arrays))
        assert meta_out == meta
        assert set(arrays_out) == set(arrays)
        for name, arr in arrays.items():
            got = arrays_out[name]
            assert got.dtype == arr.dtype.newbyteorder("=")
            assert got.shape == arr.shape
            np.testing.assert_array_equal(got, arr)

    @settings(max_examples=40, deadline=None)
    @given(meta=metas, arrays=array_dicts(), cut=st.floats(0.0, 1.0))
    def test_every_strict_prefix_raises_truncated(self, meta, arrays, cut):
        buf = encode_payload(meta, arrays)
        n = min(int(cut * len(buf)), len(buf) - 1)
        with pytest.raises(TruncatedPayloadError):
            decode_payload(buf[:n])

    @settings(max_examples=40, deadline=None)
    @given(meta=metas, arrays=array_dicts(), pos=st.floats(0.0, 1.0),
           flip=st.integers(min_value=1, max_value=255))
    def test_any_single_byte_corruption_raises(self, meta, arrays, pos, flip):
        buf = bytearray(encode_payload(meta, arrays))
        buf[min(int(pos * len(buf)), len(buf) - 1)] ^= flip
        with pytest.raises(PayloadError):
            decode_payload(bytes(buf))

    def test_trailing_bytes_rejected(self):
        buf = encode_payload({}, {"w": np.arange(3.0)})
        with pytest.raises(PayloadError):
            decode_payload(buf + b"\x00")

    def test_zero_dim_array_survives(self):
        # regression: 0-d arrays must not be promoted to shape (1,)
        _, arrays = decode_payload(encode_payload({}, {"s": np.float64(4.5)}))
        assert arrays["s"].shape == ()
        assert arrays["s"] == 4.5


class TestCheckpointProperties:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 2**31), spec=metas)
    def test_round_trip_bit_exact(self, tmp_path_factory, seed, spec):
        rng = np.random.default_rng(seed)
        model = build_model("mlp", 6, 3, rng, hidden=(4,))
        w = rng.normal(size=model.num_params)
        tmp = tmp_path_factory.mktemp("ckpt")
        path = save_checkpoint(model, tmp / "c.npz", spec=spec, w=w)
        loaded, meta = load_checkpoint(path)
        np.testing.assert_array_equal(loaded, w)
        assert meta["spec"] == {str(k): v for k, v in spec.items()}
