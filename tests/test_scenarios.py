"""Tests for scenario builders, including paper-scale and CNN runs."""

import dataclasses

import numpy as np
import pytest

from repro.config import TrainingConfig
from repro.experiments.runner import Simulation, run_experiment
from repro.experiments.scenarios import (
    POLICY_NAMES,
    experiment_config,
    make_policy,
    paper_scale_config,
)
from repro.rng import RngFactory


class TestExperimentConfig:
    def test_dataset_difficulty_ordering(self):
        fm = experiment_config(dataset="fmnist")
        cf = experiment_config(dataset="cifar10")
        assert cf.data.feature_noise > fm.data.feature_noise

    def test_policy_names_cover_paper(self):
        assert set(POLICY_NAMES) == {"FedL", "FedAvg", "FedCS", "Pow-d"}

    def test_extended_policies_constructible(self):
        cfg = experiment_config(num_clients=10)
        for name in POLICY_NAMES + ("Fair-FedL", "UCB", "Oracle"):
            pol = make_policy(name, cfg, RngFactory(0).get(f"p.{name}"))
            assert pol.name == name


class TestPaperScaleConfig:
    def test_matches_paper_section_61(self):
        cfg = paper_scale_config()
        assert cfg.population.num_clients == 100
        assert cfg.data.downscale == 1
        assert cfg.training.model == "cnn"
        assert cfg.network.bandwidth_hz == 20e6
        assert cfg.population.cost_range == (0.1, 12.0)

    def test_simulation_builds_full_resolution(self):
        # Building (not running) the paper-scale sim is fast and validates
        # the full-size CNN wiring end to end.
        cfg = paper_scale_config()
        sim = Simulation(cfg)
        assert sim.generator.num_features == 784
        assert len(sim.clients) == 100
        # One forward pass through the full CNN works.
        acc = sim.server.test_accuracy()
        assert 0.0 <= acc <= 1.0

    def test_cifar_variant(self):
        cfg = paper_scale_config(dataset="cifar10")
        sim = Simulation(cfg)
        assert sim.generator.num_features == 32 * 32 * 3


class TestCnnExperiment:
    def test_small_cnn_run_learns(self):
        """A short end-to-end run with the CNN model family."""
        cfg = experiment_config(
            budget=150.0, num_clients=8, min_participants=3,
            max_epochs=8, model="cnn",
        )
        pol = make_policy("FedAvg", cfg, RngFactory(1).get("p"))
        res = run_experiment(pol, cfg)
        tr = res.trace
        assert len(tr) >= 3
        assert tr.best_accuracy() > tr.accuracy[0]

    def test_logreg_run(self):
        cfg = experiment_config(
            budget=100.0, num_clients=8, min_participants=3,
            max_epochs=5, model="logreg",
        )
        pol = make_policy("FedAvg", cfg, RngFactory(1).get("p"))
        res = run_experiment(pol, cfg)
        assert len(res.trace) >= 1
