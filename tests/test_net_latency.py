"""Tests for the latency model (paper Sec. 3.2-3.3 formulas)."""

import numpy as np
import pytest

from repro.net.latency import (
    client_latency,
    compute_latency,
    epoch_latency,
    transmission_latency,
)


class TestComputeLatency:
    def test_paper_formula(self):
        # τ_loc = e·D/π: 20 cycles/bit × 1e6 bits / 2e9 Hz = 0.01 s.
        assert compute_latency(20.0, 1e6, 2e9) == pytest.approx(0.01)

    def test_vectorized(self):
        out = compute_latency(np.array([10.0, 20.0]), 1e6, 2e9)
        np.testing.assert_allclose(out, [0.005, 0.01])

    def test_zero_data_zero_latency(self):
        assert compute_latency(20.0, 0.0, 2e9) == 0.0

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            compute_latency(0.0, 1e6, 2e9)
        with pytest.raises(ValueError):
            compute_latency(10.0, -1.0, 2e9)
        with pytest.raises(ValueError):
            compute_latency(10.0, 1e6, 0.0)


class TestTransmissionLatency:
    def test_formula(self):
        assert transmission_latency(80e3, 1e6) == pytest.approx(0.08)

    def test_zero_rate_infinite(self):
        assert transmission_latency(80e3, 0.0) == np.inf

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            transmission_latency(0.0, 1e6)
        with pytest.raises(ValueError):
            transmission_latency(1e3, -1.0)


class TestClientLatency:
    def test_combination(self):
        # d_k = l·(τ_loc + τ_cm)
        assert client_latency(3, 0.01, 0.02) == pytest.approx(0.09)

    def test_zero_iterations(self):
        assert client_latency(0, 1.0, 1.0) == 0.0

    def test_rejects_negative_iterations(self):
        with pytest.raises(ValueError):
            client_latency(-1, 1.0, 1.0)


class TestEpochLatency:
    def test_max_over_selected_only(self):
        lat = np.array([1.0, 9.0, 2.0])
        sel = np.array([True, False, True])
        assert epoch_latency(lat, sel) == 2.0

    def test_slowest_participant_dominates(self):
        lat = np.array([1.0, 9.0, 2.0])
        sel = np.array([True, True, True])
        assert epoch_latency(lat, sel) == 9.0

    def test_empty_selection_zero(self):
        assert epoch_latency(np.ones(3), np.zeros(3, bool)) == 0.0

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            epoch_latency(np.ones(3), np.ones(2, bool))
