"""End-to-end telemetry: instrumented runs, determinism, sweep workers, CLI.

The contract under test:

* a traced run records the full event hierarchy (run/epoch lifecycle,
  learner descent/ascent, round completion);
* telemetry never changes what an experiment computes — results with the
  hub enabled are bit-identical to results with it disabled, and nothing
  is attached to ``ExperimentResult``;
* two traced runs of the same seeded config produce byte-identical
  traces once the ``ts`` field is stripped;
* sweep workers aggregate their timer registries into one valid manifest;
* ``repro trace`` renders a recorded directory and the CLI exits non-zero
  on argument errors.
"""

import dataclasses
import json

import pytest

from repro.cli import main
from repro.experiments.runner import ExperimentResult, run_experiment
from repro.experiments.scenarios import experiment_config, make_policy
from repro.experiments.sweep import (
    PolicySpec,
    SweepJob,
    results_identical,
    run_sweep,
)
from repro.obs import (
    Telemetry,
    canonical_line,
    get_telemetry,
    iter_trace_lines,
    load_manifest,
    read_events,
    use_telemetry,
    validate_event_dict,
    validate_manifest,
)
from repro.rng import RngFactory


def tiny_config(seed=0, **overrides):
    cfg = experiment_config(
        dataset="fmnist",
        iid=True,
        budget=100.0,
        seed=seed,
        num_clients=8,
        min_participants=3,
        max_epochs=3,
    )
    return cfg.replace(**overrides) if overrides else cfg


def run_fedl(cfg, telemetry=None):
    policy = make_policy("FedL", cfg, RngFactory(cfg.seed).get("policy.FedL"))
    with use_telemetry(telemetry):
        return run_experiment(policy, cfg)


class TestInstrumentedRun:
    def test_trace_contains_full_event_hierarchy(self, tmp_path):
        hub = Telemetry.for_directory(tmp_path, run_id="t")
        result = run_fedl(tiny_config(), hub)
        hub.finalize()
        events = read_events(tmp_path)
        kinds = {e.kind for e in events}
        assert {
            "run.start",
            "epoch.start",
            "epoch.decision",
            "epoch.complete",
            "learner.descent",
            "learner.ascent",
            "round.complete",
            "run.complete",
        } <= kinds
        epochs = len(result.trace)
        assert sum(e.kind == "epoch.complete" for e in events) == epochs
        assert sum(e.kind == "learner.descent" for e in events) >= epochs
        # Every line re-validates against the schema.
        for line in iter_trace_lines(tmp_path):
            validate_event_dict(json.loads(line))
        # Epoch scoping: learner/round events carry the epoch index.
        assert all(
            e.epoch is not None
            for e in events
            if e.kind in ("learner.descent", "learner.ascent", "round.complete")
        )

    def test_descent_events_carry_solver_and_constraint_fields(self, tmp_path):
        hub = Telemetry.for_directory(tmp_path)
        run_fedl(tiny_config(), hub)
        hub.finalize()
        descents = [e for e in read_events(tmp_path) if e.kind == "learner.descent"]
        ascents = [e for e in read_events(tmp_path) if e.kind == "learner.ascent"]
        assert descents and ascents
        for e in descents:
            assert {
                "solver", "iterations", "converged", "residual",
                "objective", "rho", "budget_headroom",
            } <= set(e.data)
            assert e.dur is not None
        for e in ascents:
            assert len(e.data["mu"]) == 8 + 1
            assert len(e.data["h"]) == 8 + 1

    def test_round_and_solver_phases_are_timed(self, tmp_path):
        hub = Telemetry.for_directory(tmp_path)
        run_fedl(tiny_config(), hub)
        hub.finalize()
        timers = load_manifest(tmp_path)["registry"]["timers"]
        for name in (
            "experiment.select",
            "experiment.round",
            "round.local_solve",
            "round.aggregate",
            "solver.projected_gradient",
        ):
            assert timers[name]["count"] > 0, name


class TestNoOpGuarantees:
    def test_disabled_hub_emits_nothing_and_alters_nothing(self, tmp_path):
        cfg = tiny_config()
        baseline = run_fedl(cfg)          # null hub (telemetry disabled)
        hub = Telemetry.for_directory(tmp_path)
        traced = run_fedl(cfg, hub)
        hub.finalize()
        # Enabled-vs-disabled results are bit-identical: instrumentation
        # reads no RNG and writes nothing into the result.
        assert results_identical(baseline, traced)
        # Known result surface: the four seed fields plus the sweep
        # layer's "policy" self-description — telemetry adds nothing.
        assert {f.name for f in dataclasses.fields(ExperimentResult)} == {
            "trace", "config", "stop_reason", "final_w", "policy",
        }
        assert {f.name for f in dataclasses.fields(type(cfg))} == {
            f.name for f in dataclasses.fields(tiny_config())
        }
        # And a run under the null hub leaves no files anywhere.
        assert get_telemetry().enabled is False

    def test_disabled_run_is_deterministic(self):
        cfg = tiny_config(seed=3)
        assert results_identical(run_fedl(cfg), run_fedl(cfg))


class TestTraceDeterminism:
    def test_traces_byte_identical_modulo_ts(self, tmp_path):
        cfg = tiny_config(seed=1)
        lines = []
        for name in ("a", "b"):
            hub = Telemetry.for_directory(tmp_path / name, run_id="t")
            run_fedl(cfg, hub)
            hub.finalize()
            lines.append(
                [canonical_line(l) for l in iter_trace_lines(tmp_path / name)]
            )
        assert lines[0] == lines[1]
        # ... and the raw lines differ only because of ts (sanity check
        # that the canonicalization is actually doing something).
        raw_a = list(iter_trace_lines(tmp_path / "a"))
        raw_b = list(iter_trace_lines(tmp_path / "b"))
        assert len(raw_a) == len(raw_b) > 0


class TestSweepTelemetry:
    def make_jobs(self):
        return [
            SweepJob(PolicySpec("FedAvg"), tiny_config(seed=s, max_epochs=2))
            for s in (0, 1)
        ]

    def test_forked_workers_aggregate_into_manifest(self, tmp_path):
        hub = Telemetry.for_directory(tmp_path / "trace", run_id="sweep")
        results = run_sweep(self.make_jobs(), workers=2, telemetry=hub)
        hub.finalize()
        assert len(results) == 2
        manifest = load_manifest(tmp_path / "trace")
        assert manifest is not None
        validate_manifest(manifest)
        # Both jobs ran under the sweep.job timer, merged across workers.
        assert manifest["registry"]["timers"]["sweep.job"]["count"] == 2
        workers = {w["worker"]: w["jobs"] for w in manifest["workers"]}
        assert sum(workers.values()) == 2
        assert any(w.startswith("w") for w in workers)
        # Worker event files exist and carry per-job run ids.
        events = read_events(tmp_path / "trace")
        job_runs = {e.run for e in events if e.kind == "run.start"}
        assert len(job_runs) == 2
        assert manifest["event_counts"]["sweep.job"] == 2

    def test_sweep_results_identical_with_and_without_telemetry(self, tmp_path):
        jobs = self.make_jobs()
        plain = run_sweep(jobs, workers=1)
        hub = Telemetry.for_directory(tmp_path / "trace2")
        traced = run_sweep(jobs, workers=1, telemetry=hub)
        hub.finalize()
        for a, b in zip(plain, traced):
            assert results_identical(a, b)

    def test_cache_hits_and_misses_are_counted(self, tmp_path):
        from repro.experiments.sweep import SweepCache

        jobs = self.make_jobs()
        cache = SweepCache(tmp_path / "cache")
        hub = Telemetry.for_directory(tmp_path / "t1")
        run_sweep(jobs, workers=1, cache=cache, telemetry=hub)
        hub.finalize()
        assert load_manifest(tmp_path / "t1")["registry"]["counters"][
            "sweep.cache_misses"
        ] == 2
        hub2 = Telemetry.for_directory(tmp_path / "t2")
        run_sweep(jobs, workers=1, cache=cache, telemetry=hub2)
        hub2.finalize()
        counters = load_manifest(tmp_path / "t2")["registry"]["counters"]
        assert counters["sweep.cache_hits"] == 2
        assert "sweep.cache_misses" not in counters


class TestCli:
    def test_run_telemetry_then_trace_renders(self, tmp_path, capsys):
        tel = tmp_path / "trace"
        rc = main([
            "run", "--policy", "FedL", "--clients", "8", "--participants", "3",
            "--epochs", "2", "--budget", "60", "--telemetry", str(tel),
        ])
        assert rc == 0
        assert load_manifest(tel) is not None
        rc = main(["trace", str(tel)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "per-phase timing" in out
        assert "dual max_i mu_t[i]" in out
        assert "cumulative fit" in out

    def test_trace_on_missing_directory_exits_2(self, tmp_path, capsys):
        assert main(["trace", str(tmp_path / "nope")]) == 2
        assert "error" in capsys.readouterr().err

    def test_trace_on_empty_directory_exits_2(self, tmp_path):
        assert main(["trace", str(tmp_path)]) == 2

    @pytest.mark.parametrize("argv", [
        ["run", "--budget", "-5"],
        ["run", "--epochs", "0"],
        ["run", "--clients", "4", "--participants", "9"],
        ["sweep", "--budgets", "10", "-3"],
    ])
    def test_semantic_argument_errors_exit_2(self, argv, capsys):
        assert main(argv) == 2
        assert "error" in capsys.readouterr().err

    def test_version_flag(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert __version__ in capsys.readouterr().out
