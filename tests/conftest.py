"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.rng import RngFactory


@pytest.fixture
def rng() -> np.random.Generator:
    """A fresh deterministic generator per test."""
    return np.random.default_rng(12345)


@pytest.fixture
def rng_factory() -> RngFactory:
    return RngFactory(seed=777)
