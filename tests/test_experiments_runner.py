"""Integration tests: the full online FL loop for every policy."""

import numpy as np
import pytest

from repro.config import DataConfig, PopulationConfig
from repro.experiments.runner import ExperimentResult, Simulation, run_experiment
from repro.experiments.scenarios import POLICY_NAMES, experiment_config, make_policy
from repro.rng import RngFactory


def small_config(**kwargs):
    defaults = dict(
        budget=120.0, num_clients=10, min_participants=3, max_epochs=12
    )
    defaults.update(kwargs)
    return experiment_config(**defaults)


@pytest.fixture(scope="module")
def fedavg_result():
    cfg = small_config()
    pol = make_policy("FedAvg", cfg, RngFactory(0).get("p"))
    return run_experiment(pol, cfg)


class TestSimulationSetup:
    def test_builds_all_substrates(self):
        sim = Simulation(small_config())
        assert sim.population.num_clients == 10
        assert len(sim.clients) == 10
        assert len(sim.streams) == 10
        assert sim.test_set.x.shape[0] >= 100

    def test_cifar_configuration(self):
        sim = Simulation(small_config(dataset="cifar10"))
        assert sim.generator.num_features == 16 * 16 * 3

    def test_non_iid_partition(self):
        sim = Simulation(small_config(iid=False))
        dists = np.stack([s.class_probs for s in sim.streams])
        # Non-IID: rows are skewed, not uniform.
        assert dists.max() > 0.2

    def test_realized_tau_positive_finite(self):
        sim = Simulation(small_config())
        tau = sim.realized_tau(
            np.full(10, 30), sim.channel.mean_state(), num_sharing=3
        )
        assert tau.shape == (10,)
        assert np.all(tau > 0)
        assert np.all(np.isfinite(tau))

    def test_more_sharing_slower(self):
        sim = Simulation(small_config())
        st = sim.channel.mean_state()
        counts = np.full(10, 30)
        t1 = sim.realized_tau(counts, st, num_sharing=1)
        t5 = sim.realized_tau(counts, st, num_sharing=5)
        assert np.all(t5 >= t1)


class TestRunExperiment:
    def test_budget_never_overspent(self, fedavg_result):
        tr = fedavg_result.trace
        assert tr.total_spend <= 120.0 + 1e-6
        assert np.all(tr.column("remaining_budget") >= -1e-6)

    def test_min_participants_respected(self, fedavg_result):
        assert np.all(fedavg_result.trace.column("num_selected") >= 3)

    def test_cumulative_time_monotone(self, fedavg_result):
        t = fedavg_result.trace.times
        assert np.all(np.diff(t) > 0)

    def test_stop_reason_valid(self, fedavg_result):
        assert fedavg_result.stop_reason in (
            "budget_exhausted", "max_epochs", "target_accuracy", "no_selection"
        )

    def test_deterministic_given_seed(self):
        cfg = small_config()
        r1 = run_experiment(make_policy("FedAvg", cfg, RngFactory(0).get("p")), cfg)
        r2 = run_experiment(make_policy("FedAvg", cfg, RngFactory(0).get("p")), cfg)
        np.testing.assert_array_equal(r1.trace.accuracy, r2.trace.accuracy)
        np.testing.assert_array_equal(r1.trace.times, r2.trace.times)

    def test_different_seeds_differ(self):
        cfg1, cfg2 = small_config(seed=1), small_config(seed=2)
        r1 = run_experiment(make_policy("FedAvg", cfg1, RngFactory(1).get("p")), cfg1)
        r2 = run_experiment(make_policy("FedAvg", cfg2, RngFactory(2).get("p")), cfg2)
        assert not np.array_equal(r1.trace.accuracy, r2.trace.accuracy)

    def test_target_accuracy_stops_early(self):
        cfg = small_config(max_epochs=100, budget=1e5)
        pol = make_policy("FedAvg", cfg, RngFactory(0).get("p"))
        res = run_experiment(pol, cfg, target_accuracy=0.3)
        assert res.stop_reason == "target_accuracy"
        assert res.trace.final_accuracy >= 0.3

    def test_learning_happens(self, fedavg_result):
        tr = fedavg_result.trace
        assert tr.final_accuracy > tr.accuracy[0]

    @pytest.mark.parametrize("name", POLICY_NAMES + ("Oracle",))
    def test_every_policy_completes(self, name):
        cfg = small_config(max_epochs=6)
        pol = make_policy(name, cfg, RngFactory(3).get(f"p.{name}"))
        res = run_experiment(pol, cfg)
        assert len(res.trace) >= 1
        assert res.trace.policy_name == name
        assert np.isfinite(res.trace.final_accuracy)

    def test_fedl_records_rho(self):
        cfg = small_config(max_epochs=5)
        pol = make_policy("FedL", cfg, RngFactory(0).get("p"))
        res = run_experiment(pol, cfg)
        assert np.all(np.isfinite(res.trace.column("rho")))
        assert np.all(res.trace.column("rho") >= 1.0)

    def test_unknown_policy_rejected(self):
        cfg = small_config()
        with pytest.raises(ValueError):
            make_policy("Magic", cfg, RngFactory(0).get("p"))


class TestSharedSimulation:
    def test_simulation_reuse_is_fresh_state_error_free(self):
        """Passing an explicit Simulation lets callers control pairing."""
        cfg = small_config(max_epochs=4)
        sim = Simulation(cfg)
        pol = make_policy("FedAvg", cfg, RngFactory(0).get("p"))
        res = run_experiment(pol, cfg, simulation=sim)
        assert len(res.trace) >= 1
