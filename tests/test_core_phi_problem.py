"""Tests for the decision vector Φ and the reformulated problem pieces."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.phi import Phi
from repro.core.problem import EpochInputs, FedLProblem


def make_inputs(m=6, n=2, budget=20.0, seed=0, **overrides):
    rng = np.random.default_rng(seed)
    defaults = dict(
        tau=rng.uniform(0.1, 2.0, m),
        costs=rng.uniform(0.5, 5.0, m),
        available=np.ones(m, bool),
        eta_hat=rng.uniform(0.1, 0.9, m),
        loss_gap=0.4,
        loss_sensitivity=np.full(m, -0.02),
        remaining_budget=budget,
        min_participants=n,
    )
    defaults.update(overrides)
    return EpochInputs(**defaults)


class TestPhi:
    def test_vector_round_trip(self):
        phi = Phi(x=np.array([0.2, 0.8]), rho=3.0)
        back = Phi.from_vector(phi.to_vector())
        np.testing.assert_array_equal(back.x, phi.x)
        assert back.rho == phi.rho

    def test_eta_relation(self):
        assert Phi(x=np.zeros(1), rho=2.0).eta == pytest.approx(0.5)
        assert Phi(x=np.zeros(1), rho=1.0).eta == 0.0

    def test_iterations_ceil(self):
        assert Phi(x=np.zeros(1), rho=1.0).iterations == 1
        assert Phi(x=np.zeros(1), rho=2.3).iterations == 3
        assert Phi(x=np.zeros(1), rho=3.0).iterations == 3

    def test_clip(self):
        phi = Phi(x=np.array([1.5, -0.5]), rho=100.0)
        c = phi.clip(rho_max=8.0)
        np.testing.assert_array_equal(c.x, [1.0, 0.0])
        assert c.rho == 8.0

    def test_distance(self):
        a = Phi(x=np.array([0.0]), rho=1.0)
        b = Phi(x=np.array([1.0]), rho=1.0)
        assert a.distance(b) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            Phi(x=np.zeros((2, 2)), rho=1.0)
        with pytest.raises(ValueError):
            Phi(x=np.zeros(2), rho=0.5)
        with pytest.raises(ValueError):
            Phi.from_vector(np.array([1.0]))
        a = Phi(x=np.zeros(2), rho=1.0)
        with pytest.raises(ValueError):
            a.distance(Phi(x=np.zeros(3), rho=1.0))


class TestEpochInputs:
    def test_validation_shapes(self):
        with pytest.raises(ValueError):
            make_inputs(costs=np.ones(3))

    def test_validation_eta_range(self):
        with pytest.raises(ValueError):
            make_inputs(eta_hat=np.full(6, 1.0))

    def test_validation_participants(self):
        with pytest.raises(ValueError):
            make_inputs(available=np.array([True] + [False] * 5), min_participants=2)

    def test_validation_negative_tau(self):
        with pytest.raises(ValueError):
            make_inputs(tau=np.full(6, -1.0))


class TestObjective:
    def test_f_value(self):
        inp = make_inputs(m=2, n=1, tau=np.array([1.0, 2.0]))
        prob = FedLProblem(inp)
        phi = Phi(x=np.array([1.0, 0.5]), rho=2.0)
        # f = ρ (x·τ) = 2 (1 + 1) = 4
        assert prob.f(phi) == pytest.approx(4.0)

    def test_unavailable_clients_contribute_zero(self):
        inp = make_inputs(
            m=2, n=1,
            tau=np.array([1.0, 100.0]),
            available=np.array([True, False]),
        )
        prob = FedLProblem(inp)
        phi = Phi(x=np.array([1.0, 1.0]), rho=1.0)
        assert prob.f(phi) == pytest.approx(1.0)

    def test_grad_f_matches_fd(self):
        inp = make_inputs()
        prob = FedLProblem(inp)
        phi = Phi(x=np.full(6, 0.4), rho=2.0)
        g = prob.grad_f(phi)
        v = phi.to_vector()
        eps = 1e-6
        for i in range(v.size):
            vp = v.copy(); vp[i] += eps
            vm = v.copy(); vm[i] -= eps
            num = (prob.f(Phi.from_vector(vp)) - prob.f(Phi.from_vector(vm))) / (2 * eps)
            assert g[i] == pytest.approx(num, abs=1e-6)


class TestConstraintVector:
    def test_h0_linearization(self):
        inp = make_inputs(loss_gap=0.4, loss_sensitivity=np.full(6, -0.1))
        prob = FedLProblem(inp)
        phi = Phi(x=np.full(6, 0.5), rho=1.0)
        h = prob.h(phi)
        assert h[0] == pytest.approx(0.4 - 0.1 * 3.0)

    def test_hk_theorem1_equivalence(self):
        """h_k <= 0  ⇔  η̂_k x_k <= 1 − 1/ρ (constraint 3c)."""
        inp = make_inputs(m=3, n=1, eta_hat=np.array([0.3, 0.6, 0.9]))
        prob = FedLProblem(inp)
        rho = 2.0  # η_t = 0.5
        phi = Phi(x=np.array([1.0, 1.0, 1.0]), rho=rho)
        h = prob.h(phi)[1:]
        eta_t = 1 - 1 / rho
        for k, eta_k in enumerate([0.3, 0.6, 0.9]):
            if eta_k <= eta_t:
                assert h[k] <= 1e-12
            else:
                assert h[k] > 0

    def test_hk_zero_when_unselected(self):
        """x_k = 0 ⇒ h_k = 1 − ρ <= 0 for any ρ >= 1 (3c inactive)."""
        inp = make_inputs()
        prob = FedLProblem(inp)
        phi = Phi(x=np.zeros(6), rho=3.0)
        assert np.all(prob.h(phi)[1:] <= 0)

    def test_unavailable_rows_zero(self):
        avail = np.array([True, True, True, True, False, False])
        inp = make_inputs(available=avail)
        prob = FedLProblem(inp)
        phi = Phi(x=np.ones(6), rho=1.5)
        h = prob.h(phi)[1:]
        assert h[4] == 0.0 and h[5] == 0.0

    def test_grad_mu_h_matches_fd(self):
        inp = make_inputs()
        prob = FedLProblem(inp)
        mu = np.abs(np.random.default_rng(1).normal(size=7))
        phi = Phi(x=np.full(6, 0.5), rho=2.0)
        g = prob.grad_mu_h(phi, mu)
        v = phi.to_vector()
        eps = 1e-6
        for i in range(v.size):
            vp = v.copy(); vp[i] += eps
            vm = v.copy(); vm[i] -= eps
            num = (
                mu @ prob.h(Phi.from_vector(vp)) - mu @ prob.h(Phi.from_vector(vm))
            ) / (2 * eps)
            assert g[i] == pytest.approx(num, abs=1e-6)

    def test_hessian_matches_structure(self):
        inp = make_inputs()
        prob = FedLProblem(inp)
        mu = np.ones(7)
        H = prob.hess_mu_h(mu)
        # Only x-ρ cross terms are nonzero.
        assert np.allclose(H[:6, :6], 0.0)
        assert H[6, 6] == 0.0
        np.testing.assert_allclose(H[:6, 6], inp.eta_hat)
        np.testing.assert_allclose(H, H.T)

    def test_mu_shape_validation(self):
        prob = FedLProblem(make_inputs())
        with pytest.raises(ValueError):
            prob.grad_mu_h(Phi(x=np.zeros(6), rho=1.0), np.ones(3))


class TestFeasibleSet:
    def test_project_into_box_and_constraints(self):
        inp = make_inputs(budget=8.0)
        prob = FedLProblem(inp)
        v = np.concatenate([np.full(6, 2.0), [50.0]])
        out = prob.project(v)
        lo, hi = prob.box_bounds()
        assert np.all(out >= lo - 1e-8)
        assert np.all(out <= hi + 1e-8)
        assert float(inp.costs @ out[:6]) <= inp.remaining_budget + 1e-6
        assert out[:6].sum() >= inp.min_participants - 1e-6

    def test_project_pins_unavailable(self):
        avail = np.array([True] * 4 + [False] * 2)
        inp = make_inputs(available=avail)
        prob = FedLProblem(inp)
        out = prob.project(np.concatenate([np.ones(6), [2.0]]))
        assert out[4] == 0.0 and out[5] == 0.0

    def test_constraint_matrix_consistency(self):
        inp = make_inputs()
        prob = FedLProblem(inp)
        A, b = prob.constraint_matrix()
        # A point returned by project() must satisfy Av <= b.
        v = prob.project(np.concatenate([np.full(6, 0.5), [2.0]]))
        assert np.all(A @ v <= b + 1e-6)

    def test_interior_point_strictly_feasible(self):
        inp = make_inputs(budget=15.0)
        prob = FedLProblem(inp)
        v = prob.interior_point()
        assert v is not None
        A, b = prob.constraint_matrix()
        assert np.all(A @ v < b)

    def test_interior_point_none_when_tight(self):
        # Budget below the cheapest n-subset: no strictly feasible point.
        inp = make_inputs(costs=np.full(6, 5.0), budget=9.9, min_participants=2)
        prob = FedLProblem(inp)
        assert prob.interior_point() is None

    def test_rho_max_validation(self):
        with pytest.raises(ValueError):
            FedLProblem(make_inputs(), rho_max=0.5)
