"""Timer/counter/gauge registry: stats, snapshots, cross-process merge."""

import json

from repro.obs import MetricsRegistry, TimerStat, load_snapshot, merge_snapshots


class TestTimerStat:
    def test_records_count_total_min_max(self):
        stat = TimerStat()
        for dt in (0.2, 0.1, 0.4):
            stat.record(dt)
        assert stat.count == 3
        assert abs(stat.total_s - 0.7) < 1e-12
        assert stat.min_s == 0.1 and stat.max_s == 0.4
        assert abs(stat.mean_s - 0.7 / 3) < 1e-12

    def test_dict_round_trip(self):
        stat = TimerStat()
        stat.record(0.25)
        again = TimerStat.from_dict(stat.to_dict())
        assert again.to_dict() == stat.to_dict()

    def test_empty_stat_serializes_finite(self):
        payload = TimerStat().to_dict()
        assert payload == {"count": 0, "total_s": 0.0, "min_s": 0.0, "max_s": 0.0}
        json.dumps(payload, allow_nan=False)


class TestRegistry:
    def test_counters_accumulate_and_gauges_overwrite(self):
        reg = MetricsRegistry()
        reg.add_counter("sweep.cache_hits")
        reg.add_counter("sweep.cache_hits", 2.0)
        reg.set_gauge("budget.remaining", 10.0)
        reg.set_gauge("budget.remaining", 4.0)
        snap = reg.snapshot()
        assert snap["counters"]["sweep.cache_hits"] == 3.0
        assert snap["gauges"]["budget.remaining"] == 4.0

    def test_hierarchical_names_are_independent(self):
        reg = MetricsRegistry()
        reg.record_timer("round.local_solve", 0.1)
        reg.record_timer("round.aggregate", 0.2)
        assert set(reg.snapshot()["timers"]) == {
            "round.local_solve",
            "round.aggregate",
        }


class TestMerge:
    def make(self, n, dt):
        reg = MetricsRegistry()
        for _ in range(n):
            reg.record_timer("sweep.job", dt)
        reg.add_counter("jobs", n)
        reg.set_gauge("last", dt)
        return reg

    def test_merge_snapshots_accumulates_timers_and_counters(self):
        merged = merge_snapshots(
            [self.make(2, 0.1).snapshot(), self.make(3, 0.3).snapshot()]
        )
        stat = merged.timers["sweep.job"]
        assert stat.count == 5
        assert abs(stat.total_s - (2 * 0.1 + 3 * 0.3)) < 1e-12
        assert stat.min_s == 0.1 and stat.max_s == 0.3
        assert merged.counters["jobs"] == 5.0
        assert merged.gauges["last"] == 0.3  # last snapshot wins

    def test_merge_is_associative_over_disjoint_names(self):
        a = MetricsRegistry()
        a.record_timer("x", 1.0)
        b = MetricsRegistry()
        b.record_timer("y", 2.0)
        merged = merge_snapshots([a.snapshot(), b.snapshot()])
        assert merged.timers["x"].count == 1 and merged.timers["y"].count == 1

    def test_dump_and_load_snapshot(self, tmp_path):
        reg = self.make(4, 0.05)
        path = reg.dump(tmp_path / "registry-w1.json")
        snap = load_snapshot(path)
        assert snap == reg.snapshot()

    def test_load_snapshot_tolerates_garbage(self, tmp_path):
        bad = tmp_path / "registry-w2.json"
        bad.write_text("{broken")
        assert load_snapshot(bad) is None
        assert load_snapshot(tmp_path / "missing.json") is None
