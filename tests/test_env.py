"""Tests for the client population and environment processes."""

import numpy as np
import pytest

from repro.config import PopulationConfig
from repro.env.availability import AvailabilityProcess
from repro.env.dynamics import DataVolumeProcess, PriceProcess
from repro.env.population import Population, build_population


class TestPopulation:
    def test_build_respects_config(self, rng):
        cfg = PopulationConfig(num_clients=50)
        pop = build_population(cfg, rng)
        assert pop.num_clients == 50
        assert np.all(pop.cycles_per_bit >= 10.0)
        assert np.all(pop.cycles_per_bit <= 30.0)
        assert np.all(pop.base_cost >= 0.1)
        assert np.all(pop.base_cost <= 12.0)
        assert np.all(pop.cpu_freq_hz <= 2e9 + 1)

    def test_clients_inside_cell(self, rng):
        pop = build_population(PopulationConfig(num_clients=200), rng, cell_radius_m=500.0)
        assert np.all(pop.distances_m() <= 500.0 + 1e-9)

    def test_area_uniform_placement(self, rng):
        # Under area-uniform placement, E[d] = 2R/3; reject the r=R·u bug
        # (which gives E[d] = R/2).
        pop = build_population(PopulationConfig(num_clients=4000), rng, cell_radius_m=300.0)
        assert pop.distances_m().mean() == pytest.approx(200.0, rel=0.05)

    def test_validation_shapes(self):
        with pytest.raises(ValueError):
            Population(
                positions_m=np.zeros((3, 2)),
                cpu_freq_hz=np.ones(2),
                cycles_per_bit=np.ones(3),
                base_cost=np.ones(3),
                bits_per_sample=100.0,
            )

    def test_validation_positive(self):
        with pytest.raises(ValueError):
            Population(
                positions_m=np.zeros((2, 2)),
                cpu_freq_hz=np.array([1.0, -1.0]),
                cycles_per_bit=np.ones(2),
                base_cost=np.ones(2),
                bits_per_sample=100.0,
            )


class TestAvailability:
    def test_mask_shape_and_dtype(self, rng):
        p = AvailabilityProcess(20, 0.8, rng)
        mask = p.sample()
        assert mask.shape == (20,)
        assert mask.dtype == bool

    def test_floor_enforced(self, rng):
        p = AvailabilityProcess(10, 0.05, rng, min_available=4)
        for _ in range(50):
            assert p.sample().sum() >= 4

    def test_bernoulli_mean(self, rng):
        p = AvailabilityProcess(1000, 0.7, rng)
        fractions = [p.sample().mean() for _ in range(30)]
        assert np.mean(fractions) == pytest.approx(0.7, abs=0.03)

    def test_full_availability(self, rng):
        p = AvailabilityProcess(5, 1.0, rng)
        assert p.sample().all()

    def test_expected_available(self, rng):
        assert AvailabilityProcess(10, 0.5, rng).expected_available() == 5.0

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            AvailabilityProcess(0, 0.5, rng)
        with pytest.raises(ValueError):
            AvailabilityProcess(5, 0.0, rng)
        with pytest.raises(ValueError):
            AvailabilityProcess(5, 0.5, rng, min_available=6)


class TestPriceProcess:
    def test_stays_in_clip_range(self, rng):
        p = PriceProcess(np.array([0.2, 6.0, 11.9]), rng, volatility=0.5)
        for _ in range(100):
            c = p.step()
            assert np.all((c >= 0.1) & (c <= 12.0))

    def test_zero_volatility_converges_to_base(self, rng):
        base = np.array([3.0, 7.0])
        p = PriceProcess(base, rng, volatility=0.0, mean_reversion=0.5)
        for _ in range(60):
            c = p.step()
        np.testing.assert_allclose(c, base, atol=1e-6)

    def test_current_is_read_only(self, rng):
        p = PriceProcess(np.array([1.0]), rng)
        with pytest.raises(ValueError):
            p.current[0] = 5.0

    def test_mean_reversion_toward_base(self, rng):
        base = np.full(500, 6.0)
        p = PriceProcess(base, rng, volatility=0.1, mean_reversion=0.7)
        for _ in range(200):
            c = p.step()
        assert c.mean() == pytest.approx(6.0, rel=0.1)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            PriceProcess(np.array([-1.0]), rng)
        with pytest.raises(ValueError):
            PriceProcess(np.array([1.0]), rng, mean_reversion=1.5)
        with pytest.raises(ValueError):
            PriceProcess(np.array([1.0]), rng, clip_range=(2.0, 1.0))


class TestDataVolumeProcess:
    def test_shape_and_floor(self, rng):
        p = DataVolumeProcess(10, 5.0, rng, min_samples=2)
        counts = p.sample()
        assert counts.shape == (10,)
        assert np.all(counts >= 2)
        assert counts.dtype == np.int64

    def test_poisson_mean_homogeneous(self, rng):
        p = DataVolumeProcess(2000, 40.0, rng, heterogeneous=False)
        counts = p.sample()
        assert counts.mean() == pytest.approx(40.0, rel=0.05)

    def test_heterogeneous_means_spread(self, rng):
        p = DataVolumeProcess(500, 40.0, rng, heterogeneous=True)
        assert p.means.min() < 30.0
        assert p.means.max() > 50.0

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            DataVolumeProcess(0, 5.0, rng)
        with pytest.raises(ValueError):
            DataVolumeProcess(5, 0.0, rng)
        with pytest.raises(ValueError):
            DataVolumeProcess(5, 5.0, rng, min_samples=0)
