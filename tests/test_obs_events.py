"""Event schema: emit → JSONL → parse round trip, validation, jsonify."""

import json
import math

import numpy as np
import pytest

from repro.obs import (
    TELEMETRY_SCHEMA_VERSION,
    Event,
    canonical_line,
    event_to_line,
    jsonify,
    parse_event_line,
    read_events,
    strip_volatile,
    validate_event_dict,
)


def make_event(**overrides):
    base = dict(
        kind="epoch.start",
        seq=7,
        run="FedL[seed=0]",
        worker="main",
        epoch=3,
        data={"num_available": 5, "remaining_budget": 80.0},
        wall=1700000000.25,
        dur=0.125,
    )
    base.update(overrides)
    return Event(**base)


class TestJsonify:
    def test_numpy_scalars_and_arrays(self):
        out = jsonify({"a": np.int64(3), "b": np.float64(0.5), "c": np.arange(3)})
        assert out == {"a": 3, "b": 0.5, "c": [0, 1, 2]}
        assert type(out["a"]) is int and type(out["b"]) is float

    def test_non_finite_floats_become_strings(self):
        assert jsonify(float("nan")) == "nan"
        assert jsonify(float("inf")) == "inf"
        assert jsonify(float("-inf")) == "-inf"
        # The result is strict-JSON encodable.
        json.dumps(jsonify({"x": [np.nan, np.inf]}), allow_nan=False)

    def test_nested_structures(self):
        out = jsonify({"sel": (np.bool_(True), [np.float32(1.5)])})
        assert out == {"sel": [True, [1.5]]}

    def test_unserializable_raises(self):
        with pytest.raises(TypeError):
            jsonify(object())


class TestRoundTrip:
    def test_emit_serialize_parse_round_trip(self):
        event = make_event()
        line = event_to_line(event)
        parsed = parse_event_line(line)
        assert parsed == event

    def test_line_is_single_json_object_with_versioned_shape(self):
        payload = json.loads(event_to_line(make_event()))
        assert payload["v"] == TELEMETRY_SCHEMA_VERSION
        assert set(payload) == {
            "v", "seq", "kind", "run", "worker", "epoch", "data", "ts",
        }
        assert set(payload["ts"]) == {"wall", "dur"}

    def test_null_epoch_and_dur_round_trip(self):
        event = make_event(epoch=None, dur=None)
        parsed = parse_event_line(event_to_line(event))
        assert parsed.epoch is None and parsed.dur is None

    def test_read_events_orders_by_worker_then_seq(self, tmp_path):
        for worker, seqs in (("b", [0, 1]), ("a", [0])):
            path = tmp_path / f"events-{worker}.jsonl"
            lines = [
                event_to_line(make_event(worker=worker, seq=s)) for s in seqs
            ]
            path.write_text("\n".join(lines) + "\n")
        events = read_events(tmp_path)
        assert [(e.worker, e.seq) for e in events] == [("a", 0), ("b", 0), ("b", 1)]


class TestValidation:
    def test_accepts_valid_event(self):
        validate_event_dict(json.loads(event_to_line(make_event())))

    @pytest.mark.parametrize("mutation", [
        {"v": 999},
        {"seq": -1},
        {"seq": "0"},
        {"kind": None},
        {"epoch": "three"},
        {"data": []},
        {"ts": None},
        {"ts": {"wall": "now", "dur": None}},
        {"ts": {"wall": 0.0}},
    ])
    def test_rejects_malformed(self, mutation):
        payload = json.loads(event_to_line(make_event()))
        payload.update(mutation)
        with pytest.raises(ValueError):
            validate_event_dict(payload)

    def test_parse_rejects_garbage_line(self):
        with pytest.raises(ValueError):
            parse_event_line("{not json")


class TestDeterministicCanonicalization:
    def test_strip_volatile_drops_only_ts(self):
        payload = json.loads(event_to_line(make_event()))
        stripped = strip_volatile(payload)
        assert "ts" not in stripped
        assert set(stripped) == set(payload) - {"ts"}

    def test_canonical_line_ignores_timestamps(self):
        a = event_to_line(make_event(wall=1.0, dur=0.5))
        b = event_to_line(make_event(wall=999.0, dur=None))
        assert a != b
        assert canonical_line(a) == canonical_line(b)

    def test_canonical_line_distinguishes_content(self):
        a = event_to_line(make_event(data={"x": 1}))
        b = event_to_line(make_event(data={"x": 2}))
        assert canonical_line(a) != canonical_line(b)
