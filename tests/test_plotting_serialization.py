"""Tests for ASCII plotting and model checkpointing."""

import numpy as np
import pytest

from repro.experiments.plotting import ascii_chart, sparkline
from repro.nn.models import build_model
from repro.nn.serialization import load_checkpoint, save_checkpoint


class TestSparkline:
    def test_length_matches_input(self):
        assert len(sparkline([1, 2, 3])) == 3

    def test_resamples_to_width(self):
        assert len(sparkline(list(range(100)), width=20)) == 20

    def test_monotone_series_monotone_glyphs(self):
        s = sparkline([0, 1, 2, 3, 4, 5, 6, 7])
        assert s == "▁▂▃▄▅▆▇█"

    def test_flat_series(self):
        assert sparkline([5.0, 5.0, 5.0]) == "▁▁▁"

    def test_validation(self):
        with pytest.raises(ValueError):
            sparkline([])
        with pytest.raises(ValueError):
            sparkline([1.0], width=0)


class TestAsciiChart:
    def test_contains_markers_and_legend(self):
        out = ascii_chart(
            {"A": [(0, 0), (1, 1)], "B": [(0, 1), (1, 0)]},
            width=20, height=6,
        )
        assert "*=A" in out and "o=B" in out
        assert "*" in out and "o" in out

    def test_axis_ranges_reported(self):
        out = ascii_chart({"A": [(0, 0.25), (10, 0.75)]}, width=20, height=6,
                          x_label="t", y_label="acc")
        assert "0.25" in out and "0.75" in out
        assert "t:" in out

    def test_row_count(self):
        out = ascii_chart({"A": [(0, 0), (1, 1)]}, width=15, height=5)
        # 1 header + 5 canvas + 1 axis + 1 footer
        assert len(out.splitlines()) == 8

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_chart({})
        with pytest.raises(ValueError):
            ascii_chart({"A": []})
        with pytest.raises(ValueError):
            ascii_chart({"A": [(0, 0)]}, width=5, height=2)


class TestCheckpointing:
    @pytest.fixture
    def model(self, rng):
        return build_model("mlp", 6, 3, rng, hidden=(4,))

    def test_round_trip(self, model, tmp_path, rng):
        w = rng.normal(size=model.num_params)
        model.set_params(w)
        path = save_checkpoint(model, tmp_path / "ckpt.npz", spec={"name": "mlp"})
        loaded, meta = load_checkpoint(path)
        np.testing.assert_allclose(loaded, w)
        assert meta["spec"] == {"name": "mlp"}
        assert meta["num_classes"] == 3

    def test_load_into_model(self, model, tmp_path, rng):
        w = rng.normal(size=model.num_params)
        path = save_checkpoint(model, tmp_path / "c.npz", w=w)
        fresh = build_model("mlp", 6, 3, rng, hidden=(4,))
        load_checkpoint(path, model=fresh)
        np.testing.assert_allclose(fresh.get_params(), w)

    def test_wrong_model_rejected(self, model, tmp_path, rng):
        path = save_checkpoint(model, tmp_path / "c.npz")
        other = build_model("mlp", 6, 3, rng, hidden=(8,))  # different width
        with pytest.raises(ValueError):
            load_checkpoint(path, model=other)

    def test_wrong_weight_size_rejected(self, model, tmp_path):
        with pytest.raises(ValueError):
            save_checkpoint(model, tmp_path / "c.npz", w=np.zeros(3))

    def test_class_count_mismatch_rejected(self, model, tmp_path, rng):
        path = save_checkpoint(model, tmp_path / "c.npz")
        # Same parameter count, different class count: 6→4 hidden, 4 cls
        # has (6*4+4)+(4*4+4) = 48 params vs (6*4+4)+(4*3+3) = 43 → build
        # dimensions so counts coincide is fiddly; instead tamper the meta
        # by loading raw and checking the guard through model mismatch.
        other = build_model("logreg", 13, 3, rng)
        if other.num_params == model.num_params:  # pragma: no cover
            with pytest.raises(ValueError):
                load_checkpoint(path, model=other)
        else:
            with pytest.raises(ValueError):
                load_checkpoint(path, model=other)
