"""Tests for the extensions beyond the paper: fairness-aware FedL,
the UCB bandit baseline, the smooth-max objective, and min-latency
bandwidth allocation in the runner."""

import dataclasses

import numpy as np
import pytest

from repro.baselines.base import Decision, EpochContext, RoundFeedback
from repro.baselines.ucb import UCBPolicy
from repro.config import FedLConfig, NetworkConfig
from repro.core.fairness import FairFedLPolicy, ParticipationTracker, jain_index
from repro.core.phi import Phi
from repro.core.problem import EpochInputs, FedLProblem
from repro.experiments.runner import Simulation, run_experiment
from repro.experiments.scenarios import experiment_config, make_policy
from repro.rng import RngFactory


def make_ctx(m=10, n=3, budget=100.0, seed=0, **overrides):
    rng = np.random.default_rng(seed)
    defaults = dict(
        t=0,
        available=np.ones(m, bool),
        costs=rng.uniform(0.5, 5.0, m),
        remaining_budget=budget,
        min_participants=n,
        tau_last=rng.uniform(0.1, 2.0, m),
        local_losses=rng.uniform(0.5, 3.0, m),
    )
    defaults.update(overrides)
    return EpochContext(**defaults)


def feedback_for(decision: Decision, t: int, m: int, tau: np.ndarray) -> RoundFeedback:
    return RoundFeedback(
        t=t,
        selected=decision.selected,
        tau_realized=tau,
        local_etas=np.where(decision.selected, 0.5, np.nan),
        local_losses=np.full(m, 0.8),
        population_loss=0.8,
        cost_spent=1.0,
        epoch_latency=float(tau[decision.selected].max()),
    )


class TestJainIndex:
    def test_equal_values_one(self):
        assert jain_index(np.full(5, 3.0)) == pytest.approx(1.0)

    def test_single_dominant(self):
        v = np.zeros(10)
        v[0] = 1.0
        assert jain_index(v) == pytest.approx(0.1)

    def test_all_zero_vacuous(self):
        assert jain_index(np.zeros(4)) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            jain_index(np.array([-1.0]))
        with pytest.raises(ValueError):
            jain_index(np.zeros((2, 2)))


class TestParticipationTracker:
    def test_counts_and_rates(self):
        tr = ParticipationTracker(3)
        tr.record(np.array([True, False, False]), np.ones(3, bool))
        tr.record(np.array([True, True, False]), np.ones(3, bool))
        np.testing.assert_array_equal(tr.counts, [2, 1, 0])
        np.testing.assert_allclose(tr.rates(), [1.0, 0.5, 0.0])

    def test_rate_over_available_epochs_only(self):
        tr = ParticipationTracker(2)
        tr.record(np.array([True, False]), np.array([True, False]))
        tr.record(np.array([True, False]), np.array([True, True]))
        np.testing.assert_allclose(tr.rates(), [1.0, 0.0])

    def test_fairness_trivial_at_start(self):
        assert ParticipationTracker(5).fairness() == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            ParticipationTracker(0)
        tr = ParticipationTracker(3)
        with pytest.raises(ValueError):
            tr.record(np.ones(2, bool), np.ones(3, bool))


class TestFairFedL:
    def _policy(self, m=10, **kwargs):
        return FairFedLPolicy(
            num_clients=m,
            budget=200.0,
            min_participants=3,
            theta=0.5,
            rng=np.random.default_rng(0),
            **kwargs,
        )

    def test_zero_weight_reduces_to_fedl_fractions(self):
        """κ = 0 biases nothing: the fractional decision equals FedL's."""
        from repro.core.fedl import FedLPolicy

        rng1, rng2 = np.random.default_rng(1), np.random.default_rng(1)
        fair = FairFedLPolicy(
            num_clients=8, budget=200.0, min_participants=3, theta=0.5,
            rng=rng1, fairness_weight=0.0,
        )
        plain = FedLPolicy(
            num_clients=8, budget=200.0, min_participants=3, theta=0.5, rng=rng2,
        )
        ctx = make_ctx(m=8)
        d_fair = fair.select(ctx)
        d_plain = plain.select(ctx)
        np.testing.assert_allclose(d_fair.fractional_x, d_plain.fractional_x)

    def test_queues_grow_for_unselected(self):
        pol = self._policy()
        ctx = make_ctx()
        tau = ctx.tau_last
        d = pol.select(ctx)
        pol.update(feedback_for(d, 0, 10, tau))
        unsel = ~d.selected
        assert np.all(pol.queues[unsel] > 0)
        assert np.all(pol.queues[d.selected] == 0)

    def test_improves_fairness_over_plain_fedl(self):
        """With a strongly heterogeneous fleet, plain FedL concentrates on
        the fast clients; the fairness queues spread participation."""
        from repro.core.fedl import FedLPolicy

        m, n = 10, 3
        tau = np.concatenate([np.full(3, 0.05), np.full(7, 2.0)])

        def run(policy):
            tracker = ParticipationTracker(m)
            # 200 epochs: enough for the (accurately solved) descent to
            # move the selection fractions off their uniform start — at
            # short horizons plain FedL is trivially fair because it has
            # not yet learned to prefer the fast clients.
            for t in range(200):
                ctx = make_ctx(m=m, n=n, tau_last=tau, budget=1e6)
                d = policy.select(ctx)
                tracker.record(d.selected, ctx.available)
                policy.update(feedback_for(d, t, m, tau))
            return tracker.fairness()

        fair = run(self._policy(m=m, fair_rate=0.25, fairness_weight=0.8))
        plain = run(
            FedLPolicy(
                num_clients=m, budget=200.0, min_participants=n, theta=0.5,
                rng=np.random.default_rng(2),
            )
        )
        assert fair > plain

    def test_validation(self):
        with pytest.raises(ValueError):
            self._policy(fair_rate=1.0)
        with pytest.raises(ValueError):
            self._policy(fairness_weight=-0.1)

    def test_runs_in_experiment(self):
        cfg = experiment_config(budget=120.0, num_clients=10, max_epochs=6)
        pol = make_policy("Fair-FedL", cfg, RngFactory(0).get("p"))
        res = run_experiment(pol, cfg)
        assert len(res.trace) >= 1
        assert pol.tracker.epochs == len(res.trace)


class TestUCB:
    def test_explores_all_arms_first(self):
        m, n = 6, 2
        pol = UCBPolicy(m, np.random.default_rng(0))
        pulled = np.zeros(m, bool)
        tau = np.linspace(0.1, 1.0, m)
        for t in range(4):
            ctx = make_ctx(m=m, n=n, tau_last=tau, budget=1e6)
            d = pol.select(ctx)
            pulled |= d.selected
            pol.update(feedback_for(d, t, m, tau))
        # After ceil(m/n) rounds of forced exploration, every arm pulled.
        assert pulled.all()

    def test_converges_to_fast_arms(self):
        m, n = 8, 2
        pol = UCBPolicy(m, np.random.default_rng(1), exploration=0.2)
        tau = np.concatenate([np.full(2, 0.05), np.full(6, 2.0)])
        last = None
        for t in range(60):
            ctx = make_ctx(m=m, n=n, tau_last=tau, budget=1e6)
            d = pol.select(ctx)
            pol.update(feedback_for(d, t, m, tau))
            last = d
        assert last.selected[:2].all()

    def test_only_participants_update_stats(self):
        pol = UCBPolicy(5, np.random.default_rng(0))
        ctx = make_ctx(m=5, n=2, budget=1e6)
        d = pol.select(ctx)
        pol.update(feedback_for(d, 0, 5, ctx.tau_last))
        assert pol.pulls[~d.selected].sum() == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            UCBPolicy(0, np.random.default_rng(0))
        with pytest.raises(ValueError):
            UCBPolicy(5, np.random.default_rng(0), exploration=-1.0)

    def test_runs_in_experiment(self):
        cfg = experiment_config(budget=120.0, num_clients=10, max_epochs=6)
        pol = make_policy("UCB", cfg, RngFactory(0).get("p"))
        res = run_experiment(pol, cfg)
        assert len(res.trace) >= 1


class TestSoftmaxObjective:
    def _inputs(self, m=5, seed=0):
        rng = np.random.default_rng(seed)
        return EpochInputs(
            tau=rng.uniform(0.1, 2.0, m),
            costs=rng.uniform(0.5, 3.0, m),
            available=np.ones(m, bool),
            eta_hat=rng.uniform(0.1, 0.8, m),
            loss_gap=0.3,
            loss_sensitivity=np.full(m, -0.1),
            remaining_budget=100.0,
            min_participants=2,
        )

    def test_softmax_bounds_below_sum(self):
        """smooth-max <= sum for any fractional selection (log Σ x e^{ατ}
        + 1 <= α Σ x τ fails in general, but at binary x the smooth-max is
        within log(k)/α of the true max, which is <= the sum)."""
        inp = self._inputs()
        p_sum = FedLProblem(inp, objective="sum")
        p_max = FedLProblem(inp, objective="softmax", softmax_alpha=8.0)
        x = np.zeros(5)
        x[[0, 2, 4]] = 1.0
        phi = Phi(x=x, rho=2.0)
        true_max = 2.0 * inp.tau[[0, 2, 4]].max()
        assert p_max.f(phi) >= true_max - 2.0 * np.log(4) / 8.0
        assert p_max.f(phi) <= p_sum.f(phi) + 1e-9

    def test_softmax_grad_matches_fd(self):
        inp = self._inputs()
        prob = FedLProblem(inp, objective="softmax")
        phi = Phi(x=np.full(5, 0.4), rho=2.0)
        g = prob.grad_f(phi)
        v = phi.to_vector()
        eps = 1e-6
        for i in range(v.size):
            vp = v.copy(); vp[i] += eps
            vm = v.copy(); vm[i] -= eps
            num = (
                prob.f(Phi.from_vector(vp)) - prob.f(Phi.from_vector(vm))
            ) / (2 * eps)
            assert g[i] == pytest.approx(num, abs=1e-6)

    def test_zero_selection_zero_latency(self):
        prob = FedLProblem(self._inputs(), objective="softmax")
        assert prob.f(Phi(x=np.zeros(5), rho=3.0)) == pytest.approx(0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            FedLProblem(self._inputs(), objective="hardmax")
        with pytest.raises(ValueError):
            FedLProblem(self._inputs(), objective="softmax", softmax_alpha=0.0)
        with pytest.raises(ValueError):
            FedLConfig(objective="hardmax")

    def test_fedl_runs_with_softmax_objective(self):
        cfg = experiment_config(budget=120.0, num_clients=10, max_epochs=5)
        cfg = cfg.replace(fedl=dataclasses.replace(cfg.fedl, objective="softmax"))
        pol = make_policy("FedL", cfg, RngFactory(0).get("p"))
        res = run_experiment(pol, cfg)
        assert len(res.trace) >= 1


class TestBandwidthPolicyInRunner:
    def test_min_latency_lowers_selected_tau(self):
        cfg = experiment_config(budget=120.0, num_clients=10, max_epochs=4)
        cfg_ml = cfg.replace(
            network=dataclasses.replace(cfg.network, bandwidth_policy="min_latency")
        )
        sim_eq = Simulation(cfg)
        sim_ml = Simulation(cfg_ml)
        counts = np.full(10, 30)
        st = sim_eq.channel.mean_state()
        sel = np.zeros(10, bool)
        sel[:4] = True
        tau_eq = sim_eq.realized_tau(counts, st, 4, selected=sel)
        tau_ml = sim_ml.realized_tau(counts, st, 4, selected=sel)
        assert tau_ml[sel].max() <= tau_eq[sel].max() * 1.001
        # Unselected clients keep the equal-share estimate.
        np.testing.assert_allclose(tau_ml[~sel], tau_eq[~sel])

    def test_runner_completes_with_min_latency(self):
        cfg = experiment_config(budget=120.0, num_clients=10, max_epochs=4)
        cfg = cfg.replace(
            network=dataclasses.replace(cfg.network, bandwidth_policy="min_latency")
        )
        pol = make_policy("FedAvg", cfg, RngFactory(0).get("p"))
        res = run_experiment(pol, cfg)
        assert len(res.trace) >= 1

    def test_config_validation(self):
        with pytest.raises(ValueError):
            NetworkConfig(bandwidth_policy="waterfill")
