"""Tests for the online learner (eqs. 8-9), horizon, and bounds."""

import numpy as np
import pytest

from repro.core.bounds import (
    constraint_variation,
    mu_hat_bound,
    path_length,
    regret_bound,
)
from repro.core.horizon import corollary1_step_size, horizon_bounds
from repro.core.online_learner import LearnerState, OnlineLearner
from repro.core.phi import Phi
from repro.core.problem import EpochInputs, FedLProblem
from repro.core.regret import dynamic_fit, dynamic_regret, solve_per_slot_optimum


def make_inputs(m=6, n=2, budget=20.0, seed=0, **overrides):
    rng = np.random.default_rng(seed)
    defaults = dict(
        tau=rng.uniform(0.1, 2.0, m),
        costs=rng.uniform(0.5, 5.0, m),
        available=np.ones(m, bool),
        eta_hat=rng.uniform(0.1, 0.9, m),
        loss_gap=0.4,
        loss_sensitivity=np.full(m, -0.15),  # h0 satisfiable: 0.4 − 0.15·Σx
        remaining_budget=budget,
        min_participants=n,
    )
    defaults.update(overrides)
    return EpochInputs(**defaults)


class TestHorizon:
    def test_bounds_formula(self):
        lo, hi = horizon_bounds(budget=100.0, min_participants=5, cost_min=0.5, cost_max=2.0)
        assert lo == pytest.approx(100 / (5 * 2.0))
        assert hi == pytest.approx(100 / (5 * 0.5))

    def test_bounds_ordered(self):
        lo, hi = horizon_bounds(50.0, 2, 0.1, 12.0)
        assert lo <= hi

    def test_step_size_decreases_with_budget(self):
        s1 = corollary1_step_size(100.0, 5, 0.5, 2.0)
        s2 = corollary1_step_size(10000.0, 5, 0.5, 2.0)
        assert s2 < s1

    def test_step_size_scaling_rate(self):
        # β ∝ T^{-1/3}: budget ×1000 → T ×1000 → β ×10⁻¹.
        s1 = corollary1_step_size(100.0, 5, 1.0, 1.0)
        s2 = corollary1_step_size(100_000.0, 5, 1.0, 1.0)
        assert s1 / s2 == pytest.approx(10.0, rel=1e-9)

    def test_validation(self):
        with pytest.raises(ValueError):
            horizon_bounds(0.0, 5, 0.5, 2.0)
        with pytest.raises(ValueError):
            horizon_bounds(10.0, 0, 0.5, 2.0)
        with pytest.raises(ValueError):
            horizon_bounds(10.0, 1, 2.0, 0.5)
        with pytest.raises(ValueError):
            corollary1_step_size(10.0, 1, 0.5, 2.0, scale=0.0)


class TestDualAscent:
    def test_eq9_update(self):
        learner = OnlineLearner(3, beta=0.5, delta=0.5)
        h = np.array([1.0, -2.0, 0.5, 0.0])
        mu = learner.dual_ascent(h)
        np.testing.assert_allclose(mu, [0.5, 0.0, 0.25, 0.0])

    def test_nonnegativity_preserved(self, rng):
        learner = OnlineLearner(3, beta=0.5, delta=0.3)
        for _ in range(50):
            learner.dual_ascent(rng.normal(size=4))
            assert np.all(learner.mu >= 0)

    def test_shape_validation(self):
        learner = OnlineLearner(3, beta=0.5, delta=0.5)
        with pytest.raises(ValueError):
            learner.dual_ascent(np.ones(3))

    def test_initial_mu_zero(self):
        learner = OnlineLearner(4, beta=0.1, delta=0.1)
        np.testing.assert_array_equal(learner.mu, np.zeros(5))


class TestDescentStep:
    def test_stays_feasible(self):
        inputs = make_inputs()
        learner = OnlineLearner(6, beta=0.3, delta=0.3, rho_max=5.0)
        phi = learner.descent_step(inputs)
        assert np.all((phi.x >= -1e-8) & (phi.x <= 1 + 1e-8))
        assert 1.0 <= phi.rho <= 5.0
        assert float(inputs.costs @ phi.x) <= inputs.remaining_budget + 1e-6
        assert phi.x.sum() >= inputs.min_participants - 1e-6

    def test_moves_toward_fast_clients(self):
        """With zero duals the step follows ∇f: slow clients shed mass."""
        tau = np.array([0.1, 0.1, 5.0, 5.0, 5.0, 5.0])
        inputs = make_inputs(tau=tau, n=2, budget=100.0)
        learner = OnlineLearner(6, beta=0.5, delta=0.5)
        for _ in range(30):
            phi = learner.descent_step(inputs)
        # Fast clients end with more mass than slow ones.
        assert phi.x[:2].min() > phi.x[2:].max()

    def test_mu_pressure_raises_rho(self):
        """Positive duals on the η rows push ρ upward (compensating poor
        local accuracy with more global iterations)."""
        inputs = make_inputs(eta_hat=np.full(6, 0.85))
        low = OnlineLearner(6, beta=0.3, delta=0.3, rho_max=8.0)
        high = OnlineLearner(6, beta=0.3, delta=0.3, rho_max=8.0)
        # Give `high` large duals on every η row.
        high.state.mu = np.concatenate([[0.0], np.full(6, 5.0)])
        phi_low = low.descent_step(inputs)
        phi_high = high.descent_step(inputs)
        assert phi_high.rho > phi_low.rho

    def test_prox_term_limits_movement(self):
        inputs = make_inputs()
        tiny = OnlineLearner(6, beta=1e-4, delta=0.3)
        phi0 = tiny.phi
        phi1 = tiny.descent_step(inputs)
        assert phi0.distance(phi1) < 0.05

    def test_pg_and_ip_solvers_agree(self):
        inputs = make_inputs(seed=3)
        pg = OnlineLearner(6, beta=0.3, delta=0.3, solver="projected_gradient")
        ip = OnlineLearner(6, beta=0.3, delta=0.3, solver="interior_point")
        pg.state.mu = np.abs(np.random.default_rng(0).normal(size=7))
        ip.state.mu = pg.state.mu.copy()
        phi_pg = pg.descent_step(inputs)
        phi_ip = ip.descent_step(inputs)
        assert phi_pg.distance(phi_ip) < 0.05

    def test_dimension_change_rejected(self):
        learner = OnlineLearner(4, beta=0.3, delta=0.3)
        with pytest.raises(ValueError):
            learner.descent_step(make_inputs(m=6))

    def test_validation(self):
        with pytest.raises(ValueError):
            OnlineLearner(3, beta=0.0, delta=0.1)
        with pytest.raises(ValueError):
            OnlineLearner(3, beta=0.1, delta=0.1, solver="sgd")
        with pytest.raises(ValueError):
            OnlineLearner(3, beta=0.1, delta=0.1, x_init=2.0)
        learner = OnlineLearner(3, beta=0.1, delta=0.1)
        with pytest.raises(ValueError):
            LearnerState(phi=Phi(x=np.zeros(3), rho=1.0), mu=-np.ones(4))
        with pytest.raises(ValueError):
            learner.reset_phi(Phi(x=np.zeros(5), rho=1.0))


class TestRegretMachinery:
    def test_per_slot_optimum_feasible_and_cheap(self):
        prob = FedLProblem(make_inputs(budget=100.0))
        star = solve_per_slot_optimum(prob)
        # quadratic-penalty solves carry an O(1/pen) feasibility residual
        assert np.max(np.maximum(prob.h(star), 0.0)) < 2e-3
        # Optimum must not beat the trivial lower bound f >= 0.
        assert prob.f(star) >= 0.0

    def test_optimum_no_worse_than_feasible_points(self):
        prob = FedLProblem(make_inputs(budget=100.0, seed=5))
        star = solve_per_slot_optimum(prob)
        # Compare against a grid of feasible candidates.
        rng = np.random.default_rng(0)
        for _ in range(30):
            v = prob.project(
                np.concatenate([rng.uniform(0, 1, 6), [rng.uniform(1, 8)]])
            )
            cand = Phi.from_vector(v)
            if np.max(np.maximum(prob.h(cand), 0.0)) < 1e-6:
                assert prob.f(star) <= prob.f(cand) + 1e-3

    def test_dynamic_regret_zero_for_optimal_play(self):
        probs = [FedLProblem(make_inputs(seed=s)) for s in range(3)]
        opts = [solve_per_slot_optimum(p) for p in probs]
        reg, _ = dynamic_regret(probs, opts, optima=opts)
        assert reg == pytest.approx(0.0, abs=1e-9)

    def test_dynamic_fit_zero_when_feasible(self):
        probs = [FedLProblem(make_inputs(seed=s)) for s in range(3)]
        opts = [solve_per_slot_optimum(p) for p in probs]
        assert dynamic_fit(probs, opts) < 5e-3  # O(1/pen) residual per slot

    def test_dynamic_fit_positive_when_violating(self):
        prob = FedLProblem(make_inputs(loss_gap=5.0, loss_sensitivity=np.zeros(6)))
        # h0 = 5 > 0 regardless of x: any decision violates.
        phi = Phi(x=np.full(6, 0.5), rho=1.0)
        assert dynamic_fit([prob], [phi]) >= 5.0

    def test_length_mismatch(self):
        probs = [FedLProblem(make_inputs())]
        with pytest.raises(ValueError):
            dynamic_regret(probs, [])
        with pytest.raises(ValueError):
            dynamic_fit(probs, [])


class TestBounds:
    def test_mu_hat_requires_assumption2(self):
        with pytest.raises(ValueError):
            mu_hat_bound(0.1, 0.1, 1.0, 1.0, 1.0, xi=0.5, v_hat_h=0.5)

    def test_mu_hat_positive(self):
        v = mu_hat_bound(0.1, 0.1, 1.0, 1.0, 1.0, xi=1.0, v_hat_h=0.2)
        assert v > 0

    def test_regret_bound_grows_linearly_at_fixed_steps(self):
        kw = dict(beta=0.1, delta=0.1, g_f=1.0, g_h=1.0, radius=1.0,
                  mu_hat=2.0, v_phi_star=1.0, v_h=1.0)
        r1 = regret_bound(t_c=100, **kw)
        r2 = regret_bound(t_c=200, **kw)
        assert r2 > r1

    def test_regret_bound_sublinear_with_corollary_steps(self):
        """With β = δ = T^{-1/3} and bounded variations, R_T = O(T^{2/3})."""
        def bound(t):
            step = t ** (-1 / 3)
            return regret_bound(
                t_c=t, beta=step, delta=step, g_f=1.0, g_h=1.0, radius=1.0,
                mu_hat=2.0, v_phi_star=1.0, v_h=1.0,
            )
        # ratio of bounds at 8T vs T should approach 8^{2/3} = 4.
        ratio = bound(80_000) / bound(10_000)
        assert ratio == pytest.approx(4.0, rel=0.1)

    def test_path_length(self):
        a = Phi(x=np.array([0.0]), rho=1.0)
        b = Phi(x=np.array([1.0]), rho=1.0)
        assert path_length([a, b, a]) == pytest.approx(2.0)
        assert path_length([a]) == 0.0

    def test_constraint_variation_zero_for_identical_problems(self, rng):
        probs = [FedLProblem(make_inputs(seed=0)) for _ in range(3)]
        assert constraint_variation(probs, rng) == pytest.approx(0.0, abs=1e-9)

    def test_constraint_variation_positive_for_changing(self, rng):
        probs = [
            FedLProblem(make_inputs(seed=0, loss_gap=0.0)),
            FedLProblem(make_inputs(seed=0, loss_gap=2.0)),
        ]
        assert constraint_variation(probs, rng) > 1.0
