"""Tests for the offline-optimum DP, cross-checked against brute force."""

import itertools

import numpy as np
import pytest

from repro.core.offline import EpochOption, epoch_frontier, offline_optimum


def brute_force(tau_seq, cost_seq, avail_seq, budget, n, iterations=1.0):
    """Exhaustive offline optimum on tiny instances.

    Lexicographic objective matching the DP: maximize epochs run, then
    minimize total latency, subject to total cost <= budget.
    """
    horizon = len(tau_seq)
    m = tau_seq[0].size
    per_epoch_subsets = []
    for t in range(horizon):
        avail = np.flatnonzero(avail_seq[t])
        subsets = [None]  # skip option
        for combo in itertools.combinations(avail.tolist(), n):
            subsets.append(tuple(combo))
        per_epoch_subsets.append(subsets)
    best = (-1, float("inf"))  # (epochs run, latency) lexicographic
    for assignment in itertools.product(*per_epoch_subsets):
        cost = 0.0
        latency = 0.0
        run = 0
        for t, subset in enumerate(assignment):
            if subset is None:
                continue
            run += 1
            cost += cost_seq[t][list(subset)].sum()
            latency += iterations * tau_seq[t][list(subset)].max()
        if cost <= budget + 1e-9:
            if run > best[0] or (run == best[0] and latency < best[1]):
                best = (run, latency)
    return best


class TestEpochFrontier:
    def test_frontier_is_pareto(self, rng):
        tau = rng.uniform(0.1, 2.0, 8)
        costs = rng.uniform(0.5, 5.0, 8)
        opts = epoch_frontier(tau, costs, np.ones(8, bool), n=3)
        assert opts, "nonempty frontier expected"
        for a, b in zip(opts[:-1], opts[1:]):
            assert b.cost < a.cost       # strictly cheaper...
            assert b.latency >= a.latency  # ...at equal or worse latency

    def test_every_option_has_n_clients(self, rng):
        tau = rng.uniform(0.1, 2.0, 6)
        costs = rng.uniform(0.5, 5.0, 6)
        for opt in epoch_frontier(tau, costs, np.ones(6, bool), n=2):
            assert opt.mask.sum() == 2

    def test_latency_matches_mask(self, rng):
        tau = rng.uniform(0.1, 2.0, 6)
        costs = rng.uniform(0.5, 5.0, 6)
        for opt in epoch_frontier(tau, costs, np.ones(6, bool), n=2, iterations=3.0):
            assert opt.latency == pytest.approx(3.0 * tau[opt.mask].max())

    def test_too_few_available_empty(self, rng):
        opts = epoch_frontier(
            np.ones(4), np.ones(4), np.array([True, False, False, False]), n=2
        )
        assert opts == []

    def test_first_option_is_fastest(self, rng):
        tau = np.array([0.5, 0.1, 0.9, 0.2])
        costs = np.ones(4)
        opts = epoch_frontier(tau, costs, np.ones(4, bool), n=2)
        assert opts[0].latency == pytest.approx(0.2)  # two fastest


class TestOfflineOptimum:
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_brute_force_on_tiny_instances(self, seed):
        rng = np.random.default_rng(seed)
        horizon, m, n = 3, 4, 2
        tau_seq = [rng.uniform(0.1, 2.0, m) for _ in range(horizon)]
        cost_seq = [rng.uniform(0.5, 3.0, m) for _ in range(horizon)]
        avail_seq = [np.ones(m, bool) for _ in range(horizon)]
        budget = 8.0
        bf_runs, bf_lat = brute_force(tau_seq, cost_seq, avail_seq, budget, n)
        total, masks = offline_optimum(
            tau_seq, cost_seq, avail_seq, budget, n, grid_points=4000
        )
        dp_runs = sum(1 for mask in masks if mask.any())
        assert dp_runs == bf_runs
        assert total == pytest.approx(bf_lat, rel=1e-6, abs=1e-9)

    def test_masks_respect_budget(self, rng):
        horizon, m, n = 5, 6, 2
        tau_seq = [rng.uniform(0.1, 2.0, m) for _ in range(horizon)]
        cost_seq = [rng.uniform(0.5, 3.0, m) for _ in range(horizon)]
        avail_seq = [np.ones(m, bool) for _ in range(horizon)]
        budget = 10.0
        _, masks = offline_optimum(tau_seq, cost_seq, avail_seq, budget, n)
        spend = sum(
            cost_seq[t][mask].sum() for t, mask in enumerate(masks) if mask.any()
        )
        assert spend <= budget + 1e-9

    def test_big_budget_runs_every_epoch(self, rng):
        horizon, m, n = 4, 5, 2
        tau_seq = [rng.uniform(0.1, 2.0, m) for _ in range(horizon)]
        cost_seq = [rng.uniform(0.5, 3.0, m) for _ in range(horizon)]
        avail_seq = [np.ones(m, bool) for _ in range(horizon)]
        total, masks = offline_optimum(tau_seq, cost_seq, avail_seq, 1e6, n)
        assert all(mask.sum() == n for mask in masks)
        # With unlimited budget the optimum picks the n fastest each epoch.
        expected = sum(np.sort(t)[n - 1] for t in tau_seq)
        assert total == pytest.approx(expected)

    def test_tight_budget_skips_epochs(self, rng):
        horizon, m, n = 4, 4, 2
        tau_seq = [rng.uniform(0.1, 2.0, m) for _ in range(horizon)]
        cost_seq = [np.full(m, 3.0) for _ in range(horizon)]
        avail_seq = [np.ones(m, bool) for _ in range(horizon)]
        # Each epoch costs exactly 6; budget 13 affords two epochs.
        total, masks = offline_optimum(tau_seq, cost_seq, avail_seq, 13.0, n)
        assert sum(1 for mask in masks if mask.any()) == 2

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            offline_optimum([np.ones(3)], [], [], 10.0, 1)
        with pytest.raises(ValueError):
            offline_optimum([np.ones(3)], [np.ones(3)], [np.ones(3, bool)], 0.0, 1)
        with pytest.raises(ValueError):
            offline_optimum(
                [np.ones(3)], [np.ones(3)], [np.ones(3, bool)], 10.0, 1, grid_points=1
            )
