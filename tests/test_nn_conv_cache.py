"""Memoized conv geometry caches and buffer reuse stay exact."""

import numpy as np
import pytest

from repro.nn import conv as conv_mod
from repro.nn.conv import Conv2D, im2col, im2col_indices


@pytest.fixture(autouse=True)
def clear_caches():
    conv_mod._INDICES_CACHE.clear()
    conv_mod._FLAT_PIX_CACHE.clear()
    yield
    conv_mod._INDICES_CACHE.clear()
    conv_mod._FLAT_PIX_CACHE.clear()


class TestIndexMemoization:
    def test_same_geometry_returns_cached_tuple(self):
        first = im2col_indices(8, 8, 3, 3, 1)
        second = im2col_indices(8, 8, 3, 3, 1)
        assert first is second
        assert len(conv_mod._INDICES_CACHE) == 1

    def test_distinct_geometries_get_distinct_entries(self):
        im2col_indices(8, 8, 3, 3, 1)
        im2col_indices(8, 8, 3, 3, 2)
        im2col_indices(10, 8, 3, 3, 1)
        assert len(conv_mod._INDICES_CACHE) == 3

    def test_cached_indices_are_read_only(self):
        rows, cols, _, _ = im2col_indices(6, 6, 3, 3, 1)
        with pytest.raises(ValueError):
            rows[0, 0] = 99
        with pytest.raises(ValueError):
            cols[0, 0] = 99

    def test_im2col_matches_naive_gather(self, rng):
        x = rng.normal(size=(2, 6, 6, 3))
        cols, out_h, out_w = im2col(x, 3, 3, 1)
        assert (out_h, out_w) == (4, 4)
        # Patch (0, 0) of image 0 is the raw top-left 3x3 window.
        naive = x[0, 0:3, 0:3, :].reshape(-1)
        assert np.array_equal(cols[0, 0], naive)


class TestConvBufferReuse:
    def test_forward_backward_stable_across_cache_states(self, rng):
        """Cold caches, warm caches, and a reused buffer all agree exactly."""
        x = rng.normal(size=(3, 10, 10, 1))
        layer = Conv2D(1, 4, 3, rng=np.random.default_rng(0))
        out_cold = layer.forward(x)
        grad_cold = layer.backward(np.ones_like(out_cold))
        for _ in range(3):  # steady state reuses _col_buf and both caches
            out_warm = layer.forward(x)
            grad_warm = layer.backward(np.ones_like(out_warm))
            assert np.array_equal(out_cold, out_warm)
            assert np.array_equal(grad_cold, grad_warm)

    def test_buffer_reallocates_on_batch_change(self, rng):
        layer = Conv2D(1, 4, 3, rng=np.random.default_rng(0))
        layer.forward(rng.normal(size=(2, 8, 8, 1)))
        small = layer._col_buf
        assert small is not None
        layer.forward(rng.normal(size=(5, 8, 8, 1)))
        assert layer._col_buf is not small

    def test_two_layers_share_the_geometry_cache(self, rng):
        x = rng.normal(size=(2, 9, 9, 1))
        a = Conv2D(1, 3, 3, rng=np.random.default_rng(1))
        b = Conv2D(1, 3, 3, rng=np.random.default_rng(2))
        a.forward(x)
        entries = len(conv_mod._INDICES_CACHE)
        b.forward(x)
        assert len(conv_mod._INDICES_CACHE) == entries
