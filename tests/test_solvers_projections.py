"""Tests for Euclidean projections (unit + property-based)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.solvers.projections import (
    alternating_projections,
    project_box,
    project_box_halfspace,
    project_capped_simplex,
    project_halfspace,
    project_simplex,
)

vec = hnp.arrays(
    np.float64,
    st.integers(min_value=1, max_value=12),
    elements=st.floats(-5, 5, allow_nan=False),
)


class TestProjectBox:
    def test_inside_unchanged(self):
        v = np.array([0.3, 0.7])
        np.testing.assert_array_equal(project_box(v, 0.0, 1.0), v)

    def test_clips_both_sides(self):
        out = project_box(np.array([-1.0, 2.0]), 0.0, 1.0)
        np.testing.assert_array_equal(out, [0.0, 1.0])

    def test_empty_box_raises(self):
        with pytest.raises(ValueError):
            project_box(np.array([0.5]), 1.0, 0.0)

    @given(vec)
    def test_idempotent(self, v):
        once = project_box(v, -1.0, 1.0)
        np.testing.assert_array_equal(project_box(once, -1.0, 1.0), once)


class TestProjectHalfspace:
    def test_feasible_unchanged(self):
        v = np.array([0.1, 0.1])
        a = np.ones(2)
        np.testing.assert_array_equal(project_halfspace(v, a, 1.0), v)

    def test_projection_lands_on_boundary(self):
        v = np.array([2.0, 2.0])
        out = project_halfspace(v, np.ones(2), 2.0)
        assert np.isclose(out @ np.ones(2), 2.0)

    def test_projection_is_orthogonal(self):
        v = np.array([3.0, 1.0])
        a = np.array([1.0, 2.0])
        out = project_halfspace(v, a, 1.0)
        # displacement parallel to a
        disp = v - out
        cross = disp[0] * a[1] - disp[1] * a[0]
        assert abs(cross) < 1e-12

    def test_zero_normal_feasible(self):
        v = np.array([1.0])
        np.testing.assert_array_equal(project_halfspace(v, np.zeros(1), 0.0), v)

    def test_zero_normal_infeasible_raises(self):
        with pytest.raises(ValueError):
            project_halfspace(np.array([1.0]), np.zeros(1), -1.0)

    @given(vec)
    @settings(max_examples=50)
    def test_result_feasible(self, v):
        a = np.ones_like(v)
        out = project_halfspace(v, a, 0.5)
        assert float(a @ out) <= 0.5 + 1e-9


class TestProjectSimplex:
    def test_already_on_simplex(self):
        v = np.array([0.2, 0.3, 0.5])
        np.testing.assert_allclose(project_simplex(v), v, atol=1e-12)

    def test_sums_to_radius(self):
        out = project_simplex(np.array([5.0, -1.0, 0.3]), radius=2.0)
        assert np.isclose(out.sum(), 2.0)
        assert np.all(out >= 0)

    def test_rejects_bad_radius(self):
        with pytest.raises(ValueError):
            project_simplex(np.ones(3), radius=0.0)

    @given(vec)
    @settings(max_examples=50)
    def test_feasible_and_idempotent(self, v):
        out = project_simplex(v)
        assert np.isclose(out.sum(), 1.0, atol=1e-8)
        assert np.all(out >= -1e-12)
        np.testing.assert_allclose(project_simplex(out), out, atol=1e-7)


class TestProjectCappedSimplex:
    def test_basic(self):
        out = project_capped_simplex(np.array([2.0, 0.5, -1.0]), total=1.5, cap=1.0)
        assert np.isclose(out.sum(), 1.5, atol=1e-8)
        assert np.all((out >= -1e-12) & (out <= 1.0 + 1e-12))

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            project_capped_simplex(np.ones(2), total=3.0, cap=1.0)

    @given(vec, st.floats(0.1, 0.9))
    @settings(max_examples=50)
    def test_feasible(self, v, frac):
        total = frac * v.size
        out = project_capped_simplex(v, total=total, cap=1.0)
        assert np.isclose(out.sum(), total, atol=1e-6)
        assert np.all((out >= -1e-9) & (out <= 1.0 + 1e-9))


class TestProjectBoxHalfspace:
    def test_box_feasible_stays(self):
        v = np.array([0.2, 0.2])
        out = project_box_halfspace(v, 0.0, 1.0, np.ones(2), 1.0)
        np.testing.assert_allclose(out, v)

    def test_binding_budget(self):
        v = np.array([1.0, 1.0])
        a = np.array([1.0, 1.0])
        out = project_box_halfspace(v, 0.0, 1.0, a, 1.0)
        assert float(a @ out) <= 1.0 + 1e-8
        # symmetric problem → symmetric answer
        assert np.isclose(out[0], out[1], atol=1e-6)

    def test_negative_a_rejected(self):
        with pytest.raises(ValueError):
            project_box_halfspace(np.ones(2), 0.0, 1.0, np.array([1.0, -1.0]), 1.0)

    def test_empty_intersection_raises(self):
        with pytest.raises(ValueError):
            project_box_halfspace(np.ones(2), 0.5, 1.0, np.ones(2), 0.1)

    @given(vec)
    @settings(max_examples=40)
    def test_matches_dykstra(self, v):
        """Exact dual-search projection equals Dykstra on the same sets."""
        a = np.abs(np.ones_like(v))
        b = 0.6 * v.size
        direct = project_box_halfspace(v, 0.0, 1.0, a, b)
        dyk = alternating_projections(
            v,
            [
                lambda u: project_box(u, 0.0, 1.0),
                lambda u: project_halfspace(u, a, b),
            ],
            max_iters=2000,
        )
        np.testing.assert_allclose(direct, dyk, atol=1e-5)


class TestDykstra:
    def test_no_projections_identity(self):
        v = np.array([1.0, 2.0])
        np.testing.assert_array_equal(alternating_projections(v, []), v)

    def test_intersection_point_is_feasible(self):
        # box [0,1]^2 intersect {x+y <= 0.5}
        v = np.array([1.0, 1.0])
        out = alternating_projections(
            v,
            [
                lambda u: project_box(u, 0.0, 1.0),
                lambda u: project_halfspace(u, np.ones(2), 0.5),
            ],
        )
        assert np.all((out >= -1e-9) & (out <= 1 + 1e-9))
        assert out.sum() <= 0.5 + 1e-7

    def test_converges_to_nearest_point(self):
        # For the symmetric instance above the nearest point is (0.25, 0.25).
        out = alternating_projections(
            np.array([1.0, 1.0]),
            [
                lambda u: project_box(u, 0.0, 1.0),
                lambda u: project_halfspace(u, np.ones(2), 0.5),
            ],
        )
        np.testing.assert_allclose(out, [0.25, 0.25], atol=1e-6)
