"""Regression tests for ``RoundResult`` defaults and annotations."""

from typing import Optional, get_type_hints

import numpy as np

from repro.fl.round_runner import RoundResult


def make_result(**overrides):
    kwargs = dict(
        w=np.zeros(3),
        iterations=2,
        local_etas=np.array([0.1, np.nan, 0.3, 0.2]),
        participant_loss=1.0,
        population_loss=1.1,
        test_accuracy=0.5,
        test_loss=0.9,
        eta_max=0.3,
    )
    kwargs.update(overrides)
    return RoundResult(**kwargs)


def test_upload_ratio_defaults_to_ones_of_client_shape():
    result = make_result()
    assert result.upload_ratio.shape == result.local_etas.shape
    np.testing.assert_array_equal(result.upload_ratio, np.ones(4))


def test_upload_ratio_annotation_is_optional():
    hints = get_type_hints(RoundResult)
    assert hints["upload_ratio"] == Optional[np.ndarray]


def test_explicit_upload_ratio_is_kept_and_coerced():
    result = make_result(upload_ratio=[0.5, 1.0, 0.25, 1.0])
    assert isinstance(result.upload_ratio, np.ndarray)
    np.testing.assert_array_equal(result.upload_ratio, [0.5, 1.0, 0.25, 1.0])
