"""Tournament harness: report structure, golden determinism, cache reuse.

The load-bearing guarantee is the PR2 telemetry convention applied to
reports: every wall-clock datum lives under ``ts``, so two runs of the
same matrix produce *byte-identical* persisted reports once ``ts`` is
dropped — and a second run against the same cache directory re-runs
nothing.
"""

import json

import pytest

from repro.cli import main
from repro.experiments.sweep import SweepCache
from repro.experiments.tournament import (
    SCENARIOS,
    TOURNAMENT_SCHEMA_VERSION,
    UnknownScenarioError,
    format_report,
    get_scenario,
    load_report,
    quick_base_config,
    run_tournament,
    save_report,
    scenario_names,
)

STRATS = ["FedAvg", "GradNorm"]
SCENS = ["iid", "volatile-prices"]


def tiny_tournament(cache=None):
    return run_tournament(
        strategies=STRATS,
        scenarios=SCENS,
        seeds=[0],
        base_config=quick_base_config(),
        workers=1,
        cache=cache,
    )


def canonical(report):
    payload = dict(report)
    payload.pop("ts", None)
    return json.dumps(payload, sort_keys=True, indent=2)


class TestScenarioRegistry:
    def test_names_unique_and_quick_subset(self):
        names = [s.name for s in SCENARIOS]
        assert len(names) == len(set(names))
        quick = scenario_names(quick=True)
        assert set(quick) <= set(scenario_names())
        assert len(quick) >= 4  # the --quick matrix floor

    def test_unknown_scenario_is_typed(self):
        with pytest.raises(UnknownScenarioError) as excinfo:
            get_scenario("bogus")
        assert excinfo.value.scenario == "bogus"

    def test_scenarios_produce_distinct_configs(self):
        base = quick_base_config()
        configs = {s.name: s.configure(base) for s in SCENARIOS}
        assert len({repr(c) for c in configs.values()}) == len(configs)


class TestReportStructure:
    def test_report_shape(self):
        report = tiny_tournament()
        assert report["schema"] == TOURNAMENT_SCHEMA_VERSION
        assert [s["name"] for s in report["strategies"]] == STRATS
        assert [s["name"] for s in report["scenarios"]] == SCENS
        for scen in SCENS:
            assert sorted(report["rankings"][scen]) == sorted(STRATS)
            assert report["winners"][scen] == report["rankings"][scen][0]
            for strat in STRATS:
                cell = report["cells"][scen][strat]
                assert cell["seeds"] == 1
                for metric in ("accuracy", "loss", "spend"):
                    assert {"mean", "std"} <= set(cell[metric])
        ranks = [row["rank"] for row in report["overall"]]
        assert ranks == [1, 2]
        for a in STRATS:
            for b in STRATS:
                if a != b:
                    assert 0 <= report["head_to_head"][a][b] <= len(SCENS)

    def test_format_report_renders_every_name(self):
        report = tiny_tournament()
        text = format_report(report)
        for scen in SCENS:
            assert scen in text
        for strat in STRATS:
            assert strat in text
        # Rendering is a pure function of the report.
        assert format_report(report) == text


class TestGoldenDeterminism:
    def test_two_runs_are_byte_identical(self, tmp_path):
        a = tiny_tournament()
        b = tiny_tournament()
        assert canonical(a) == canonical(b)
        pa = save_report(a, tmp_path / "a.json")
        pb = save_report(b, tmp_path / "b.json")
        assert pa.read_bytes() == pb.read_bytes()

    def test_cached_rerun_is_byte_identical_and_all_hits(self, tmp_path):
        cache = SweepCache(tmp_path / "cache")
        first = tiny_tournament(cache=cache)
        hits = []
        second = run_tournament(
            strategies=STRATS,
            scenarios=SCENS,
            seeds=[0],
            base_config=quick_base_config(),
            workers=1,
            cache=cache,
            progress=lambda e: hits.append(e.cached),
        )
        assert canonical(first) == canonical(second)
        assert hits and all(hits)  # every cell came from the cache


class TestCliTournament:
    ARGS = [
        "tournament", "--quick",
        "--strategies", *STRATS,
        "--scenarios", *SCENS,
        "--workers", "1",
    ]

    def test_quick_run_twice_identical_modulo_ts_and_cache_hot(
        self, tmp_path, capsys
    ):
        cache = str(tmp_path / "cache")
        out_a, out_b = str(tmp_path / "a.json"), str(tmp_path / "b.json")
        assert main(self.ARGS + ["--cache-dir", cache, "--out", out_a]) == 0
        first = capsys.readouterr()
        assert "overall" in first.out or "rank" in first.out
        assert main(self.ARGS + ["--cache-dir", cache, "--out", out_b]) == 0
        second = capsys.readouterr()
        progress = [l for l in second.err.splitlines() if l.startswith("[")]
        assert progress and all(l.endswith("(cache)") for l in progress)
        ra, rb = load_report(out_a), load_report(out_b)
        assert "generated_unix" in ra["ts"]
        assert canonical(ra) == canonical(rb)
        assert ra["ts"] != {} and rb["ts"] != {}

    def test_quiet_suppresses_progress(self, tmp_path, capsys):
        assert main(self.ARGS + ["--quiet"]) == 0
        assert "[" not in capsys.readouterr().err


class TestIssueAcceptance:
    def test_quick_matrix_covers_registry_and_scenarios(self):
        # The ISSUE floor: >= 9 strategies (>= 4 beyond the paper set)
        # across >= 4 scenarios, all through the sweep engine.
        report = run_tournament(seeds=[0])
        names = [s["name"] for s in report["strategies"]]
        assert len(names) >= 9
        paper = {"FedL", "FedAvg", "FedCS", "Pow-d"}
        assert len([n for n in names if n not in paper]) >= 4
        assert len(report["scenarios"]) >= 4
        assert set(report["overall"][0].keys()) >= {
            "rank", "strategy", "mean_rank", "mean_accuracy", "scenario_wins",
        }
