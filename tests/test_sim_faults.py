"""Fault-layer tests: profiles, retries, dropout, and the Markov
availability bridge (sojourn-consistent hazard, untouched marginals)."""

import numpy as np
import pytest

from repro.env.availability import MarkovAvailabilityProcess
from repro.sim import (
    FAULT_PROFILES,
    FaultProfile,
    ParticipationFloorError,
    SimRoundSpec,
    fault_profile,
    sample_dropout_times,
    simulate_round,
)


class TestFaultProfile:
    def test_named_presets_resolve(self):
        for name in FAULT_PROFILES:
            assert fault_profile(name) is FAULT_PROFILES[name]

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown fault profile"):
            fault_profile("meteor-strike")

    def test_none_profile_is_deterministic(self):
        assert not fault_profile("none").stochastic
        assert fault_profile("flaky-uplink").stochastic
        assert fault_profile("churn").stochastic

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"dropout_hazard": -0.1},
            {"upload_failure_prob": 1.0},
            {"upload_failure_prob": -0.2},
            {"max_retries": -1},
            {"retry_backoff_s": -0.5},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            FaultProfile(**kwargs)

    def test_from_churn_uses_intra_round_hazard(self):
        chain = MarkovAvailabilityProcess(
            8, 0.6, np.random.default_rng(0), mean_on_epochs=4.0
        )
        profile = FaultProfile.from_churn(chain, upload_failure_prob=0.1)
        assert profile.dropout_hazard == chain.intra_round_hazard()
        assert profile.upload_failure_prob == 0.1


class TestDropoutSampling:
    def test_zero_hazard_never_drops(self):
        times = sample_dropout_times(5, 0.0, 10.0, None)
        assert np.all(np.isinf(times))

    def test_positive_hazard_requires_rng(self):
        with pytest.raises(ValueError, match="RNG"):
            sample_dropout_times(5, 0.5, 10.0, None)

    def test_finite_draws_land_inside_the_round(self):
        times = sample_dropout_times(2000, 0.5, 10.0, np.random.default_rng(1))
        finite = times[np.isfinite(times)]
        assert finite.size > 0
        assert np.all((finite >= 0.0) & (finite < 10.0))

    def test_survival_probability_matches_hazard(self):
        hazard = 0.7
        times = sample_dropout_times(
            20_000, hazard, 1.0, np.random.default_rng(2)
        )
        survive_frac = float(np.mean(np.isinf(times)))
        assert survive_frac == pytest.approx(np.exp(-hazard), abs=0.02)

    def test_deterministic_under_seed(self):
        a = sample_dropout_times(50, 0.4, 5.0, np.random.default_rng(7))
        b = sample_dropout_times(50, 0.4, 5.0, np.random.default_rng(7))
        assert np.array_equal(a, b)


def flaky_spec(**kw):
    args = dict(
        client_ids=np.arange(4),
        tau_loc=np.array([0.5, 0.6, 0.7, 0.4]),
        tau_cm=np.full(4, 0.1),
        iterations=3,
        faults=FaultProfile(
            upload_failure_prob=0.5, max_retries=1, retry_backoff_s=0.05
        ),
        min_participants=1,
    )
    args.update(kw)
    return SimRoundSpec(**args)


class TestUploadRetries:
    def test_graceful_degradation_after_retry_exhaustion(self):
        # Seed pinned: client 0 exhausts its retries and drops, the
        # round still completes with the survivors.
        out = simulate_round(flaky_spec(), np.random.default_rng(0))
        assert out.dropped == {0: "upload_failed"}
        assert out.num_retries == 3
        assert 0 not in set(out.survivors.tolist())
        assert len(out.contributors) == 3
        # Retry time is real work: a retrying client's busy seconds
        # exceed the fault-free closed form, a clean client's match it.
        assert out.client_busy_s[1] > 3 * (0.6 + 0.1)
        assert out.client_busy_s[3] == 3 * (0.4 + 0.1)

    def test_floor_violation_raises_typed_error(self):
        # Seed pinned: every client exhausts retries -> floor breach.
        with pytest.raises(ParticipationFloorError) as err:
            simulate_round(flaky_spec(), np.random.default_rng(8))
        assert err.value.reason == "upload_failed"

    def test_same_seed_bit_identical(self):
        a = simulate_round(flaky_spec(), np.random.default_rng(5))
        b = simulate_round(flaky_spec(), np.random.default_rng(5))
        assert a.completion_time == b.completion_time
        assert a.dropped == b.dropped and a.num_retries == b.num_retries
        assert a.client_busy_s == b.client_busy_s
        assert [i.tolist() for i in a.contributors] == [
            i.tolist() for i in b.contributors
        ]

    def test_retries_break_the_exact_run_but_stay_consistent(self):
        out = simulate_round(flaky_spec(), np.random.default_rng(0))
        # Widths are still the slowest accepted offset per iteration, so
        # completion is their (run-grouped) sum.
        assert out.completion_time == pytest.approx(
            sum(out.iteration_durations)
        )


class TestMarkovBridge:
    def make_chain(self, seed):
        return MarkovAvailabilityProcess(
            12, 0.55, np.random.default_rng(seed), mean_on_epochs=3.0
        )

    def test_hazard_is_sojourn_consistent(self):
        chain = self.make_chain(0)
        # P(drop during round) == the chain's one-step off-transition.
        assert 1.0 - np.exp(-chain.intra_round_hazard()) == pytest.approx(
            chain.p_on_off, rel=1e-12
        )

    def test_epoch_marginals_unchanged_by_hazard_queries(self):
        """Regression: wiring intra-round dropout must not perturb the
        epoch-granular availability sequence (the hazard is a pure
        function of the transition matrix, consuming no RNG)."""
        plain = self.make_chain(42)
        bridged = self.make_chain(42)
        masks_plain, masks_bridged = [], []
        drop_rng = np.random.default_rng(1234)
        for _ in range(25):
            masks_plain.append(plain.sample())
            bridged.intra_round_hazard()  # interleave hazard queries
            bridged.dropout_times(6, 2.5, drop_rng)  # and dropout draws
            masks_bridged.append(bridged.sample())
        assert all(
            np.array_equal(a, b)
            for a, b in zip(masks_plain, masks_bridged)
        )

    def test_dropout_times_refuses_the_chain_rng(self):
        chain = self.make_chain(3)
        with pytest.raises(ValueError, match="own RNG stream"):
            chain.dropout_times(6, 2.5, chain.rng)
