"""Metrics exporter: metrics.json shape, prom exposition, finalize wiring."""

import json

import pytest

from repro.obs import (
    METRICS_NAME,
    METRICS_SCHEMA_VERSION,
    PROM_NAME,
    Telemetry,
    build_metrics,
    export_metrics,
    load_metrics,
    prometheus_exposition,
    use_telemetry,
)
from repro.obs.export import _format_value


MANIFEST = {
    "registry": {
        "timers": {
            "experiment.round": {
                "count": 4, "total_s": 2.0, "min_s": 0.4, "max_s": 0.6,
            },
            "round.local_solve": {
                "count": 8, "total_s": 1.2, "min_s": 0.1, "max_s": 0.2,
            },
        },
        "counters": {"epochs": 4.0},
        "gauges": {"controller.mu": 0.25},
    },
    "event_counts": {"epoch.complete": 4, "run.complete": 1},
    "workers": [{"worker": "w1", "jobs": 3, "busy_s": 1.5}],
    "meta": {"command": "run"},
    "ts": {"generated_unix": 123.0},
}


class TestBuildMetrics:
    def test_shape_and_derived_mean(self):
        doc = build_metrics(MANIFEST)
        assert doc["v"] == METRICS_SCHEMA_VERSION
        assert doc["kind"] == "metrics"
        timer = doc["timers"]["experiment.round"]
        assert timer["count"] == 4
        assert timer["mean_s"] == pytest.approx(0.5)
        assert doc["counters"] == {"epochs": 4.0}
        assert doc["gauges"] == {"controller.mu": 0.25}
        assert doc["events"] == {"epoch.complete": 4, "run.complete": 1}
        assert doc["events_total"] == 5
        assert doc["workers"] == [{"worker": "w1", "jobs": 3, "busy_s": 1.5}]

    def test_wall_clock_isolated_under_ts(self):
        doc = build_metrics(MANIFEST)
        assert doc["ts"] == {"generated_unix": 123.0}
        stripped = {k: v for k, v in doc.items() if k != "ts"}
        assert "generated_unix" not in json.dumps(stripped)

    def test_empty_manifest(self):
        doc = build_metrics({})
        assert doc["timers"] == {}
        assert doc["events_total"] == 0
        assert prometheus_exposition(doc) == ""


class TestPrometheusExposition:
    def test_families_and_samples(self):
        text = prometheus_exposition(build_metrics(MANIFEST))
        assert "# TYPE repro_phase_seconds_total counter" in text
        assert 'repro_phase_seconds_total{phase="experiment.round"} 2' in text
        assert 'repro_phase_count_total{phase="round.local_solve"} 8' in text
        assert 'repro_counter_total{name="epochs"} 4' in text
        assert 'repro_gauge{name="controller.mu"} 0.25' in text
        assert 'repro_events_total{kind="epoch.complete"} 4' in text
        assert 'repro_worker_jobs_total{worker="w1"} 3' in text
        assert 'repro_worker_busy_seconds_total{worker="w1"} 1.5' in text
        assert text.endswith("\n")

    def test_label_escaping(self):
        doc = build_metrics(
            {"registry": {"counters": {'a"b\\c\nd': 1.0}}}
        )
        text = prometheus_exposition(doc)
        assert 'name="a\\"b\\\\c\\nd"' in text

    def test_value_formatting(self):
        assert _format_value(float("nan")) == "NaN"
        assert _format_value(float("inf")) == "+Inf"
        assert _format_value(float("-inf")) == "-Inf"
        assert _format_value(3.0) == "3"
        assert _format_value(0.125) == "0.125"


class TestExportRoundTrip:
    def test_export_then_load(self, tmp_path):
        json_path, prom_path = export_metrics(tmp_path, MANIFEST)
        assert json_path.name == METRICS_NAME
        assert prom_path.name == PROM_NAME
        loaded = load_metrics(tmp_path)
        assert loaded == build_metrics(MANIFEST)
        assert not list(tmp_path.glob("*.tmp"))

    def test_load_missing_or_bad(self, tmp_path):
        assert load_metrics(tmp_path) is None
        (tmp_path / METRICS_NAME).write_text("{not json", encoding="utf-8")
        assert load_metrics(tmp_path) is None
        (tmp_path / METRICS_NAME).write_text('{"kind": "other"}')
        assert load_metrics(tmp_path) is None


class TestFinalizeIntegration:
    def _record_run(self, tmp_path):
        hub = Telemetry.for_directory(tmp_path, run_id="r0")
        with use_telemetry(hub):
            with hub.timer("experiment.round"):
                pass
            hub.emit("epoch.complete", epoch=0, data={"test_accuracy": 0.5})
        return hub

    def test_finalize_writes_metrics_artifacts(self, tmp_path):
        hub = self._record_run(tmp_path)
        hub.finalize(meta={"command": "test"})
        assert (tmp_path / METRICS_NAME).is_file()
        assert (tmp_path / PROM_NAME).is_file()
        metrics = load_metrics(tmp_path)
        assert metrics["events"]["epoch.complete"] == 1
        assert "experiment.round" in metrics["timers"]
        prom = (tmp_path / PROM_NAME).read_text(encoding="utf-8")
        assert 'repro_events_total{kind="epoch.complete"} 1' in prom

    def test_finalize_is_idempotent(self, tmp_path):
        hub = self._record_run(tmp_path)
        first = hub.finalize(meta={"command": "test"})
        before = (tmp_path / "manifest.json").read_text(encoding="utf-8")
        second = hub.finalize(meta={"command": "other"})
        assert first == second
        after = (tmp_path / "manifest.json").read_text(encoding="utf-8")
        assert before == after

    def test_no_torn_tmp_files_left(self, tmp_path):
        hub = self._record_run(tmp_path)
        hub.finalize(meta={})
        assert not list(tmp_path.glob("*.tmp"))
