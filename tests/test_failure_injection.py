"""Failure-injection tests: selected clients crashing mid-round."""

import dataclasses

import numpy as np
import pytest

from repro.experiments.runner import run_experiment
from repro.experiments.scenarios import experiment_config, make_policy
from repro.rng import RngFactory


def config_with_failures(prob, **kwargs):
    defaults = dict(budget=150.0, num_clients=10, min_participants=4, max_epochs=8)
    defaults.update(kwargs)
    cfg = experiment_config(**defaults)
    return cfg.replace(
        population=dataclasses.replace(cfg.population, failure_prob=prob)
    )


class TestFailureInjection:
    def test_failures_recorded(self):
        cfg = config_with_failures(0.5)
        pol = make_policy("FedAvg", cfg, RngFactory(0).get("p"))
        res = run_experiment(pol, cfg)
        failed = res.trace.column("num_failed")
        assert failed.sum() > 0          # at 50% failure some must crash
        assert np.all(failed >= 0)

    def test_no_failures_by_default(self):
        cfg = config_with_failures(0.0)
        pol = make_policy("FedAvg", cfg, RngFactory(0).get("p"))
        res = run_experiment(pol, cfg)
        assert res.trace.column("num_failed").sum() == 0

    def test_rent_charged_for_crashed_clients(self):
        """cost_spent reflects all rented clients (num_selected), not the
        survivors — you pay for the crash."""
        cfg = config_with_failures(0.6)
        pol = make_policy("FedAvg", cfg, RngFactory(1).get("p"))
        res = run_experiment(pol, cfg)
        # Budget accounting stays exact.
        assert res.trace.total_spend <= cfg.budget + 1e-6
        for rec in res.trace.records:
            assert rec.num_failed <= rec.num_selected

    def test_training_survives_heavy_failures(self):
        cfg = config_with_failures(0.5, budget=400.0, max_epochs=25)
        pol = make_policy("FedAvg", cfg, RngFactory(2).get("p"))
        res = run_experiment(pol, cfg)
        assert res.trace.final_accuracy > res.trace.accuracy[0]

    def test_fedl_survives_failures(self):
        cfg = config_with_failures(0.3, budget=300.0, max_epochs=15)
        pol = make_policy("FedL", cfg, RngFactory(3).get("p"))
        res = run_experiment(pol, cfg)
        assert len(res.trace) >= 5
        assert np.all(pol.mu >= 0)

    def test_failures_slow_convergence(self):
        """More failures → less useful work per epoch → (weakly) worse
        accuracy after a fixed number of epochs."""
        accs = {}
        for prob in (0.0, 0.7):
            cfg = config_with_failures(prob, budget=1e6, max_epochs=15)
            pol = make_policy("FedAvg", cfg, RngFactory(4).get(f"p{prob}"))
            res = run_experiment(pol, cfg)
            accs[prob] = res.trace.final_accuracy
        assert accs[0.7] <= accs[0.0] + 0.05

    def test_config_validation(self):
        from repro.config import PopulationConfig

        with pytest.raises(ValueError):
            PopulationConfig(failure_prob=1.0)
        with pytest.raises(ValueError):
            PopulationConfig(failure_prob=-0.1)
