"""Live-runtime supervision: heartbeats, worker death, restart, degradation.

The contract under test: SIGKILLing (or wedging) a forked client worker
mid-experiment must never hang the run.  The runtime's pump treats EOF /
torn frames as a death signal, the heartbeat watchdog catches silent
wedges, and a died worker is restarted from its last checkpointed
client-RNG state with bounded retries.  When too many of a round's
clients die with the worker, the run degrades to the typed
:class:`ParticipationFloorError` (the CLI's exit-1 path) instead of
waiting out the barrier.
"""

import dataclasses
import os
import signal

import pytest

from repro.config import LiveConfig
from repro.experiments.runner import run_experiment
from repro.experiments.scenarios import experiment_config, make_policy
from repro.live.runtime import LiveRuntime
from repro.rng import RngFactory
from repro.sim.faults import ParticipationFloorError


def live_config(min_participants=2, **live_kwargs):
    cfg = experiment_config(
        budget=400.0,
        num_clients=8,
        min_participants=min_participants,
        max_epochs=4,
    )
    live = dict(
        workers=2,
        time_scale=0.01,
        round_timeout_s=20.0,
        worker_heartbeat_s=0.1,
        restart_backoff_s=0.01,
    )
    live.update(live_kwargs)
    return cfg.replace(
        training=dataclasses.replace(cfg.training, engine="live"),
        live=LiveConfig(**live),
    )


def run_hooked(cfg, hook, policy="FedCS", monkeypatch=None):
    """Run the experiment with ``hook(runtime, spec, holder)`` called at
    the top of every ``begin_round``; returns (result, holder)."""
    holder = {}
    orig = LiveRuntime.begin_round

    def begin_round(self, spec, rng=None):
        holder["runtime"] = self
        hook(self, spec, holder)
        return orig(self, spec, rng)

    monkeypatch.setattr(LiveRuntime, "begin_round", begin_round)
    pol = make_policy(policy, cfg, RngFactory(cfg.seed).get("cli.policy"))
    result = run_experiment(pol, cfg)
    return result, holder


class TestWorkerDeath:
    def test_sigkill_with_floor_headroom_restarts_and_completes(
        self, monkeypatch
    ):
        """Kill worker 1 at a round where enough clients live elsewhere:
        the round absorbs the casualties, the worker restarts, the run
        finishes normally."""
        cfg = live_config()

        def hook(runtime, spec, holder):
            if holder.get("killed") or not runtime._pids:
                return
            pid = runtime._pids[1]
            if pid is None:
                return
            owned1 = [
                int(c) for c in spec.client_ids
                if runtime.owner_of(int(c)) == 1
            ]
            keep = len(spec.client_ids) - len(owned1)
            if owned1 and keep >= spec.min_participants:
                os.kill(pid, signal.SIGKILL)
                holder["killed"] = True

        result, holder = run_hooked(cfg, hook, monkeypatch=monkeypatch)
        assert holder.get("killed"), "kill condition never arose"
        runtime = holder["runtime"]
        assert runtime.worker_deaths_total >= 1
        assert runtime.worker_restarts_total >= 1
        assert len(result.trace) == cfg.max_epochs

    def test_permadead_worker_degrades_to_floor_error(self, monkeypatch):
        """With restarts exhausted (budget 0) and a floor the surviving
        worker cannot cover alone, the run raises the typed floor error
        instead of hanging on the barrier."""
        cfg = live_config(min_participants=5, max_worker_restarts=0)

        def hook(runtime, spec, holder):
            if holder.get("killed") or not runtime._pids:
                return
            pid = runtime._pids[1]
            if pid is not None:
                os.kill(pid, signal.SIGKILL)
                holder["killed"] = True

        with pytest.raises(ParticipationFloorError):
            run_hooked(cfg, hook, monkeypatch=monkeypatch)

    def test_wedged_worker_caught_by_heartbeat_watchdog(self, monkeypatch):
        """SIGSTOP produces no EOF — only the heartbeat staleness check
        can notice.  The watchdog must kill and restart the wedged worker
        well inside the round timeout."""
        cfg = live_config(worker_stale_s=0.5)

        def hook(runtime, spec, holder):
            if holder.get("wedged") or not runtime._pids:
                return
            pid = runtime._pids[1]
            owned1 = [
                int(c) for c in spec.client_ids
                if runtime.owner_of(int(c)) == 1
            ]
            keep = len(spec.client_ids) - len(owned1)
            if pid is not None and owned1 and keep >= spec.min_participants:
                os.kill(pid, signal.SIGSTOP)
                holder["wedged"] = True

        result, holder = run_hooked(cfg, hook, monkeypatch=monkeypatch)
        assert holder.get("wedged"), "wedge condition never arose"
        runtime = holder["runtime"]
        assert runtime.worker_deaths_total >= 1
        assert runtime.worker_restarts_total >= 1
        assert len(result.trace) == cfg.max_epochs

    def test_death_counters_surface_in_round_telemetry(self, monkeypatch):
        """The per-round outcome carries death/restart deltas (these feed
        the live.* telemetry events)."""
        cfg = live_config()
        outcomes = []
        orig_finish = None

        from repro.live.runtime import LiveRound

        orig_finish = LiveRound.finish

        def finish(self):
            outcome = orig_finish(self)
            outcomes.append(outcome)
            return outcome

        monkeypatch.setattr(LiveRound, "finish", finish)

        def hook(runtime, spec, holder):
            if holder.get("killed") or not runtime._pids:
                return
            pid = runtime._pids[1]
            owned1 = [
                int(c) for c in spec.client_ids
                if runtime.owner_of(int(c)) == 1
            ]
            keep = len(spec.client_ids) - len(owned1)
            if pid is not None and owned1 and keep >= spec.min_participants:
                os.kill(pid, signal.SIGKILL)
                holder["killed"] = True

        run_hooked(cfg, hook, monkeypatch=monkeypatch)
        assert sum(o.worker_deaths for o in outcomes) >= 1
        assert sum(o.worker_restarts for o in outcomes) >= 1
