"""Telemetry hub: no-op guarantees, scoping, sinks, manifest, progress."""

import io
import json

import pytest

from repro.obs import (
    NULL_TELEMETRY,
    MANIFEST_NAME,
    NullTelemetry,
    Telemetry,
    build_manifest,
    get_telemetry,
    load_manifest,
    read_events,
    set_telemetry,
    use_telemetry,
    validate_manifest,
)


class TestNullHub:
    def test_default_hub_is_null_and_disabled(self):
        hub = get_telemetry()
        assert isinstance(hub, NullTelemetry)
        assert hub.enabled is False

    def test_every_operation_is_a_noop(self):
        hub = NULL_TELEMETRY
        assert hub.emit("run.start", data={"x": 1}) is None
        hub.counter("c")
        hub.gauge("g", 1.0)
        hub.progress("ignored")
        assert hub.registry.snapshot() == {
            "timers": {},
            "counters": {},
            "gauges": {},
        }

    def test_timer_is_one_shared_object(self):
        hub = NULL_TELEMETRY
        t1 = hub.timer("a")
        t2 = hub.timer("b")
        assert t1 is t2
        with t1:
            pass
        assert hub.registry.snapshot()["timers"] == {}


class TestInstallation:
    def test_use_telemetry_restores_previous(self):
        hub = Telemetry()
        before = get_telemetry()
        with use_telemetry(hub) as active:
            assert active is hub and get_telemetry() is hub
        assert get_telemetry() is before

    def test_set_telemetry_none_reinstalls_null(self):
        previous = set_telemetry(Telemetry())
        try:
            set_telemetry(None)
            assert isinstance(get_telemetry(), NullTelemetry)
        finally:
            set_telemetry(previous)


class TestEmission:
    def test_seq_is_monotonic_and_scopes_apply(self, tmp_path):
        hub = Telemetry.for_directory(tmp_path, run_id="r", worker="main")
        hub.emit("run.start")
        with hub.epoch_scope(4):
            hub.emit("epoch.start", data={"k": 1})
        hub.set_epoch(9)
        hub.emit("epoch.complete")
        hub.set_epoch(None)
        with hub.run_scope("other"):
            hub.emit("run.start")
        hub.close()
        events = read_events(tmp_path)
        assert [e.seq for e in events] == [0, 1, 2, 3]
        assert [e.epoch for e in events] == [None, 4, 9, None]
        assert [e.run for e in events] == ["r", "r", "r", "other"]

    def test_progress_echoes_and_records_one_event(self, tmp_path):
        stream = io.StringIO()
        hub = Telemetry.for_directory(tmp_path, progress_stream=stream)
        hub.progress("[1/2] working")
        hub.close()
        assert "[1/2] working" in stream.getvalue()
        (event,) = read_events(tmp_path)
        assert event.kind == "sweep.progress"
        assert event.data["message"] == "[1/2] working"

    def test_progress_only_hub_is_disabled_but_still_echoes(self):
        stream = io.StringIO()
        hub = Telemetry(progress_stream=stream)
        assert hub.enabled is False
        hub.progress("line")
        assert stream.getvalue() == "line\n"

    def test_timer_records_registry_and_optional_event(self, tmp_path):
        hub = Telemetry.for_directory(tmp_path)
        with hub.timer("solver.descent"):
            pass
        with hub.timer("round.local_solve", emit_kind="round.complete"):
            pass
        hub.close()
        timers = hub.registry.snapshot()["timers"]
        assert timers["solver.descent"]["count"] == 1
        (event,) = read_events(tmp_path)
        assert event.kind == "round.complete" and event.dur is not None


class TestManifest:
    def test_finalize_writes_valid_manifest(self, tmp_path):
        hub = Telemetry.for_directory(tmp_path, run_id="r")
        hub.emit("run.start")
        hub.counter("sweep.cache_hits", 2)
        with hub.timer("sweep.job"):
            pass
        path = hub.finalize(meta={"command": "test"})
        assert path == tmp_path / MANIFEST_NAME
        manifest = json.loads(path.read_text())
        validate_manifest(manifest)
        assert manifest["event_counts"] == {"run.start": 1}
        assert manifest["registry"]["counters"]["sweep.cache_hits"] == 2.0
        assert manifest["meta"] == {"command": "test"}
        # The hub's own registry arrives via its snapshot file: no double count.
        assert manifest["registry"]["timers"]["sweep.job"]["count"] == 1
        assert [w["worker"] for w in manifest["workers"]] == ["main"]
        assert manifest["workers"][0]["jobs"] == 1

    def test_build_manifest_merges_worker_snapshots(self, tmp_path):
        for worker, n in (("w1", 2), ("w2", 3)):
            hub = Telemetry.for_directory(tmp_path, worker=worker)
            for _ in range(n):
                with hub.timer("sweep.job"):
                    pass
            hub.dump_worker_snapshot()
            hub.close()
        manifest = build_manifest(tmp_path)
        validate_manifest(manifest)
        assert manifest["registry"]["timers"]["sweep.job"]["count"] == 5
        assert {w["worker"]: w["jobs"] for w in manifest["workers"]} == {
            "w1": 2,
            "w2": 3,
        }

    def test_load_manifest_rejects_invalid(self, tmp_path):
        (tmp_path / MANIFEST_NAME).write_text(json.dumps({"v": 1}))
        assert load_manifest(tmp_path) is None

    @pytest.mark.parametrize("mutation", [
        {"v": 42},
        {"kind": "something-else"},
        {"registry": {}},
        {"event_counts": None},
        {"workers": "w1"},
    ])
    def test_validate_manifest_rejects_malformed(self, tmp_path, mutation):
        hub = Telemetry.for_directory(tmp_path)
        hub.finalize()
        manifest = json.loads((tmp_path / MANIFEST_NAME).read_text())
        manifest.update(mutation)
        with pytest.raises(ValueError):
            validate_manifest(manifest)
