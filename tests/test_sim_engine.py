"""Unit tests for the deterministic discrete-event loop (repro.sim.engine)."""

import pytest

from repro.sim.engine import EventLoop, SimTimeError


class TestOrdering:
    def test_events_run_in_time_order(self):
        loop = EventLoop()
        order = []
        loop.schedule_at(3.0, lambda t: order.append(("c", t)))
        loop.schedule_at(1.0, lambda t: order.append(("a", t)))
        loop.schedule_at(2.0, lambda t: order.append(("b", t)))
        end = loop.run()
        assert order == [("a", 1.0), ("b", 2.0), ("c", 3.0)]
        assert end == 3.0
        assert loop.processed == 3

    def test_ties_break_by_insertion_sequence(self):
        loop = EventLoop()
        order = []
        for tag in "abcde":
            loop.schedule_at(1.0, lambda t, tag=tag: order.append(tag))
        loop.run()
        assert order == list("abcde")

    def test_same_instant_reschedule_runs_after_queued(self):
        # A callback scheduling at `now` runs after everything already
        # queued for that instant (seq order), not before.
        loop = EventLoop()
        order = []
        loop.schedule_at(1.0, lambda t: (order.append("first"),
                                         loop.schedule_at(t, lambda t2: order.append("late"))))
        loop.schedule_at(1.0, lambda t: order.append("second"))
        loop.run()
        assert order == ["first", "second", "late"]

    def test_clock_is_monotone(self):
        loop = EventLoop()
        loop.schedule_at(5.0, lambda t: None)
        loop.run()
        with pytest.raises(SimTimeError):
            loop.schedule_at(4.0, lambda t: None)

    def test_negative_delay_rejected(self):
        loop = EventLoop()
        with pytest.raises(SimTimeError):
            loop.schedule(-0.1, lambda t: None)


class TestCancellation:
    def test_cancelled_events_are_skipped(self):
        loop = EventLoop()
        fired = []
        keep = loop.schedule_at(1.0, lambda t: fired.append("keep"))
        gone = loop.schedule_at(2.0, lambda t: fired.append("gone"))
        EventLoop.cancel(gone)
        loop.run()
        assert fired == ["keep"]
        assert loop.processed == 1
        assert not keep.cancelled and gone.cancelled

    def test_cancel_none_is_noop(self):
        EventLoop.cancel(None)  # must not raise

    def test_len_counts_pending_noncancelled(self):
        loop = EventLoop()
        a = loop.schedule_at(1.0, lambda t: None)
        loop.schedule_at(2.0, lambda t: None)
        assert len(loop) == 2
        EventLoop.cancel(a)
        assert len(loop) == 1


class TestRunControl:
    def test_stop_from_callback_halts(self):
        loop = EventLoop()
        fired = []
        loop.schedule_at(1.0, lambda t: (fired.append(1), loop.stop()))
        loop.schedule_at(2.0, lambda t: fired.append(2))
        loop.run()
        assert fired == [1]
        assert len(loop) == 1  # the later event is still queued

    def test_until_stops_before_future_events(self):
        loop = EventLoop()
        fired = []
        loop.schedule_at(1.0, lambda t: fired.append(1))
        loop.schedule_at(5.0, lambda t: fired.append(5))
        end = loop.run(until=3.0)
        assert fired == [1]
        assert end == 3.0 and loop.now == 3.0
        # Resuming picks the remaining event back up.
        loop.run()
        assert fired == [1, 5]

    def test_until_advances_clock_on_empty_heap(self):
        loop = EventLoop()
        assert loop.run(until=7.5) == 7.5
