"""Tests for the trace invariant checker — and, through it, a sweep of
well-formedness checks over every policy and environment variant."""

import dataclasses

import numpy as np
import pytest

from repro.experiments.metrics import EpochRecord, Trace
from repro.experiments.runner import run_experiment
from repro.experiments.scenarios import experiment_config, make_policy
from repro.experiments.validation import validate_trace
from repro.rng import RngFactory

ALL_POLICIES = ("FedL", "FedAvg", "FedCS", "Pow-d", "Fair-FedL", "UCB", "Oracle")


def record(**overrides):
    base = dict(
        t=0, test_accuracy=0.5, test_loss=1.0, population_loss=1.0,
        epoch_latency=1.0, cumulative_time=1.0, cost_spent=10.0,
        remaining_budget=90.0, num_selected=3, num_available=8,
        iterations=2, rho=2.0, eta_max=0.5, num_failed=0,
    )
    base.update(overrides)
    return EpochRecord(**base)


def one_record_trace(cfg_budget=100.0, **overrides):
    tr = Trace(policy_name="X")
    tr.append(record(**overrides))
    return tr


class TestDetectsViolations:
    def _cfg(self):
        return experiment_config(budget=100.0, num_clients=8, min_participants=3)

    def test_clean_trace_passes(self):
        assert validate_trace(one_record_trace(), self._cfg()) == []

    def test_overspend_detected(self):
        tr = one_record_trace(cost_spent=200.0, remaining_budget=-100.0)
        problems = validate_trace(tr, self._cfg())
        assert any("I1" in p for p in problems)

    def test_bad_running_budget_detected(self):
        tr = one_record_trace(remaining_budget=50.0)  # should be 90
        assert any("I1" in p for p in validate_trace(tr, self._cfg()))

    def test_time_mismatch_detected(self):
        tr = one_record_trace(cumulative_time=5.0)  # != epoch_latency 1.0
        assert any("I2" in p for p in validate_trace(tr, self._cfg()))

    def test_participation_floor_detected(self):
        tr = one_record_trace(num_selected=1)
        assert any("I3" in p for p in validate_trace(tr, self._cfg()))

    def test_over_selection_detected(self):
        tr = one_record_trace(num_selected=9)
        assert any("I3" in p for p in validate_trace(tr, self._cfg()))

    def test_rho_iteration_mismatch_detected(self):
        tr = one_record_trace(rho=3.4, iterations=2)
        assert any("I4" in p for p in validate_trace(tr, self._cfg()))

    def test_accuracy_range_detected(self):
        tr = one_record_trace(test_accuracy=1.5)
        assert any("I5" in p for p in validate_trace(tr, self._cfg()))

    def test_failed_count_detected(self):
        tr = one_record_trace(num_failed=5, num_selected=3)
        assert any("I5" in p for p in validate_trace(tr, self._cfg()))

    def test_empty_trace_ok(self):
        assert validate_trace(Trace(policy_name="E"), self._cfg()) == []


class TestAllPoliciesProduceValidTraces:
    @pytest.mark.parametrize("name", ALL_POLICIES)
    def test_policy_trace_is_well_formed(self, name):
        cfg = experiment_config(
            budget=150.0, num_clients=10, min_participants=3, max_epochs=8
        )
        pol = make_policy(name, cfg, RngFactory(7).get(f"p.{name}"))
        res = run_experiment(pol, cfg)
        assert validate_trace(res.trace, cfg) == []

    def test_with_failures_and_compression(self):
        cfg = experiment_config(
            budget=150.0, num_clients=10, min_participants=3, max_epochs=8
        )
        cfg = cfg.replace(
            population=dataclasses.replace(cfg.population, failure_prob=0.3),
            training=dataclasses.replace(cfg.training, compression="quantize"),
        )
        pol = make_policy("FedL", cfg, RngFactory(8).get("p"))
        res = run_experiment(pol, cfg)
        assert validate_trace(res.trace, cfg) == []

    def test_with_tdma_and_markov(self):
        cfg = experiment_config(
            budget=150.0, num_clients=10, min_participants=3, max_epochs=8
        )
        cfg = cfg.replace(
            network=dataclasses.replace(cfg.network, mac="tdma"),
            population=dataclasses.replace(
                cfg.population, availability_model="markov", availability_prob=0.7
            ),
        )
        pol = make_policy("FedAvg", cfg, RngFactory(9).get("p"))
        res = run_experiment(pol, cfg)
        assert validate_trace(res.trace, cfg) == []
