"""Tests for losses, models, optimizers, and metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.losses import l2_penalty, softmax, softmax_cross_entropy
from repro.nn.metrics import accuracy, confusion_matrix, top_k_accuracy
from repro.nn.models import ClassifierModel, build_model
from repro.nn.optim import SGD, constant_schedule, step_decay_schedule


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        p = softmax(rng.normal(size=(5, 7)))
        np.testing.assert_allclose(p.sum(axis=1), 1.0)

    def test_shift_invariance(self, rng):
        z = rng.normal(size=(3, 4))
        np.testing.assert_allclose(softmax(z), softmax(z + 100.0), atol=1e-12)

    def test_no_overflow(self):
        p = softmax(np.array([[1000.0, 0.0]]))
        assert np.all(np.isfinite(p))


class TestCrossEntropy:
    def test_uniform_logits_log_c(self):
        loss, _ = softmax_cross_entropy(np.zeros((4, 10)), np.zeros(4, dtype=int))
        assert loss == pytest.approx(np.log(10))

    def test_perfect_prediction_near_zero(self):
        logits = np.full((2, 3), -50.0)
        logits[np.arange(2), [0, 1]] = 50.0
        loss, _ = softmax_cross_entropy(logits, np.array([0, 1]))
        assert loss < 1e-6

    def test_gradient_matches_finite_difference(self, rng):
        logits = rng.normal(size=(3, 4))
        y = np.array([0, 2, 3])
        _, grad = softmax_cross_entropy(logits, y)
        eps = 1e-6
        for i in range(3):
            for j in range(4):
                lp = logits.copy(); lp[i, j] += eps
                lm = logits.copy(); lm[i, j] -= eps
                num = (
                    softmax_cross_entropy(lp, y)[0]
                    - softmax_cross_entropy(lm, y)[0]
                ) / (2 * eps)
                assert grad[i, j] == pytest.approx(num, abs=1e-5)

    def test_gradient_rows_sum_to_zero(self, rng):
        _, grad = softmax_cross_entropy(rng.normal(size=(4, 5)), np.arange(4))
        np.testing.assert_allclose(grad.sum(axis=1), 0.0, atol=1e-12)

    def test_label_validation(self):
        with pytest.raises(ValueError):
            softmax_cross_entropy(np.zeros((2, 3)), np.array([0, 3]))
        with pytest.raises(ValueError):
            softmax_cross_entropy(np.zeros((2, 3)), np.array([0]))


class TestL2Penalty:
    def test_value_and_grad(self):
        w = np.array([1.0, 2.0])
        val, grad = l2_penalty(w, 0.1)
        assert val == pytest.approx(0.05 * 5.0)
        np.testing.assert_allclose(grad, 0.1 * w)

    def test_rejects_negative_reg(self):
        with pytest.raises(ValueError):
            l2_penalty(np.ones(2), -1.0)


class TestClassifierModel:
    @pytest.fixture
    def model(self, rng):
        return build_model("mlp", 6, 3, rng, hidden=(5,), l2_reg=1e-3)

    def test_loss_grad_consistent_with_fd(self, model, rng):
        x = rng.normal(size=(8, 6))
        y = rng.integers(0, 3, size=8)
        w = model.get_params()
        loss, grad = model.loss_and_grad(w, x, y)
        idx = rng.choice(w.size, size=8, replace=False)
        eps = 1e-6
        for i in idx:
            wp = w.copy(); wp[i] += eps
            wm = w.copy(); wm[i] -= eps
            num = (model.loss(wp, x, y) - model.loss(wm, x, y)) / (2 * eps)
            assert grad[i] == pytest.approx(num, abs=1e-5)

    def test_loss_is_functional_in_w(self, model, rng):
        """loss(w) must not depend on current internal parameters."""
        x = rng.normal(size=(4, 6))
        y = rng.integers(0, 3, size=4)
        w = model.get_params()
        l1 = model.loss(w, x, y)
        model.set_params(rng.normal(size=w.size))
        l2 = model.loss(w, x, y)
        assert l1 == pytest.approx(l2)

    def test_predict_shape_and_range(self, model, rng):
        x = rng.normal(size=(10, 6))
        p = model.predict(model.get_params(), x)
        assert p.shape == (10,)
        assert set(np.unique(p)).issubset(range(3))

    def test_predict_proba_rows_sum_one(self, model, rng):
        probs = model.predict_proba(model.get_params(), rng.normal(size=(5, 6)))
        np.testing.assert_allclose(probs.sum(axis=1), 1.0)

    def test_accuracy_bounds(self, model, rng):
        x = rng.normal(size=(20, 6))
        y = rng.integers(0, 3, size=20)
        a = model.accuracy(model.get_params(), x, y)
        assert 0.0 <= a <= 1.0

    def test_sgd_reduces_loss(self, model, rng):
        x = rng.normal(size=(32, 6))
        y = rng.integers(0, 3, size=32)
        w = model.get_params()
        l0, g = model.loss_and_grad(w, x, y)
        for _ in range(30):
            l, g = model.loss_and_grad(w, x, y)
            w = w - 0.1 * g
        assert model.loss(w, x, y) < l0


class TestBuildModel:
    def test_logreg_param_count(self, rng):
        m = build_model("logreg", 10, 4, rng)
        assert m.num_params == 10 * 4 + 4

    def test_cnn_requires_image_shape(self, rng):
        with pytest.raises(ValueError):
            build_model("cnn", 64, 10, rng)

    def test_cnn_shape_mismatch(self, rng):
        with pytest.raises(ValueError):
            build_model("cnn", 64, 10, rng, image_shape=(5, 5, 1))

    def test_cnn_forward_works(self, rng):
        m = build_model("cnn", 14 * 14, 10, rng, image_shape=(14, 14, 1), cnn_scale=0.5)
        x = rng.normal(size=(3, 196))
        assert m.predict(m.get_params(), x).shape == (3,)

    def test_cnn_cifar_shape(self, rng):
        m = build_model("cnn", 16 * 16 * 3, 10, rng, image_shape=(16, 16, 3), cnn_scale=0.5)
        x = rng.normal(size=(2, 768))
        assert m.predict(m.get_params(), x).shape == (2,)

    def test_unknown_model(self, rng):
        with pytest.raises(ValueError):
            build_model("vit", 10, 2, rng)

    def test_mlp_hidden_sizes(self, rng):
        m = build_model("mlp", 8, 2, rng, hidden=(16, 4))
        assert m.num_params == (8 * 16 + 16) + (16 * 4 + 4) + (4 * 2 + 2)


class TestSGDOptimizer:
    def test_plain_step(self):
        opt = SGD(lr=0.1)
        w = opt.step(np.array([1.0]), np.array([2.0]))
        np.testing.assert_allclose(w, [0.8])

    def test_does_not_mutate_input(self):
        opt = SGD(lr=0.1)
        w = np.array([1.0])
        opt.step(w, np.array([1.0]))
        assert w[0] == 1.0

    def test_momentum_accelerates(self):
        plain = SGD(lr=0.1)
        mom = SGD(lr=0.1, momentum=0.9)
        w1, w2 = np.array([1.0]), np.array([1.0])
        g = np.array([1.0])
        for _ in range(5):
            w1 = plain.step(w1, g)
            w2 = mom.step(w2, g)
        assert w2[0] < w1[0]

    def test_schedule_applied(self):
        opt = SGD(lr=step_decay_schedule(1.0, decay=0.5, every=1))
        w = np.array([0.0])
        w = opt.step(w, np.array([1.0]))   # lr=1
        w = opt.step(w, np.array([1.0]))   # lr=0.5
        np.testing.assert_allclose(w, [-1.5])

    def test_reset(self):
        opt = SGD(lr=constant_schedule(0.1), momentum=0.5)
        opt.step(np.zeros(1), np.ones(1))
        opt.reset()
        assert opt._velocity is None

    def test_validation(self):
        with pytest.raises(ValueError):
            SGD(momentum=1.0)
        with pytest.raises(ValueError):
            constant_schedule(0.0)
        with pytest.raises(ValueError):
            step_decay_schedule(1.0, decay=0.0)
        opt = SGD()
        with pytest.raises(ValueError):
            opt.step(np.zeros(2), np.zeros(3))


class TestMetrics:
    def test_accuracy(self):
        assert accuracy(np.array([1, 2, 3]), np.array([1, 0, 3])) == pytest.approx(2 / 3)

    def test_accuracy_validation(self):
        with pytest.raises(ValueError):
            accuracy(np.array([1]), np.array([1, 2]))
        with pytest.raises(ValueError):
            accuracy(np.array([]), np.array([]))

    def test_top_k(self):
        scores = np.array([[0.1, 0.5, 0.4], [0.9, 0.05, 0.06]])
        assert top_k_accuracy(scores, np.array([2, 1]), k=2) == pytest.approx(0.5)

    def test_top_k_full_always_one(self, rng):
        scores = rng.normal(size=(10, 4))
        y = rng.integers(0, 4, size=10)
        assert top_k_accuracy(scores, y, k=4) == 1.0

    def test_confusion_matrix(self):
        cm = confusion_matrix(np.array([0, 1, 1]), np.array([0, 0, 1]), 2)
        np.testing.assert_array_equal(cm, [[1, 1], [0, 1]])

    def test_confusion_validation(self):
        with pytest.raises(ValueError):
            confusion_matrix(np.array([2]), np.array([0]), 2)
