"""Tests for the assumption-verification and multi-seed aggregation tools."""

import numpy as np
import pytest

from repro.core.problem import EpochInputs, FedLProblem
from repro.datasets.synthetic import ClassConditionalGenerator
from repro.experiments.metrics import EpochRecord, Trace
from repro.experiments.stats import (
    Band,
    aggregate_on_rounds,
    aggregate_on_times,
    multi_seed_suite,
)
from repro.fl.analysis import assumption1_constants, estimate_curvature
from repro.nn.models import build_model


def make_trace(name, accs, dt=1.0):
    tr = Trace(policy_name=name)
    for i, a in enumerate(accs):
        tr.append(
            EpochRecord(
                t=i, test_accuracy=a, test_loss=1 - a, population_loss=1 - a,
                epoch_latency=dt, cumulative_time=dt * (i + 1), cost_spent=1.0,
                remaining_budget=10.0, num_selected=3, num_available=8,
                iterations=2, rho=2.0, eta_max=0.5,
            )
        )
    return tr


class TestCurvature:
    @pytest.fixture
    def logreg_setup(self, rng_factory):
        gen = ClassConditionalGenerator((5, 5, 1), 3, rng_factory.get("g"), noise=0.3)
        reg = 0.05
        model = build_model("logreg", 25, 3, rng_factory.get("m"), l2_reg=reg)
        data = gen.sample(60, rng=rng_factory.get("d"))
        return model, data, reg

    def test_logreg_strong_convexity_at_least_l2(self, logreg_setup, rng):
        """With L2 reg, the objective is γ-strongly convex with γ >= reg;
        sampled curvature must respect that floor."""
        model, data, reg = logreg_setup
        est = estimate_curvature(model, data, model.get_params(), rng)
        assert est.strong_convexity >= reg - 1e-6

    def test_smoothness_at_least_gamma(self, logreg_setup, rng):
        model, data, reg = logreg_setup
        est = estimate_curvature(model, data, model.get_params(), rng)
        assert est.smoothness >= est.strong_convexity > 0
        assert np.isfinite(est.condition_number)

    def test_validation(self, logreg_setup, rng):
        model, data, _ = logreg_setup
        with pytest.raises(ValueError):
            estimate_curvature(model, data, model.get_params(), rng, num_pairs=0)
        with pytest.raises(ValueError):
            estimate_curvature(model, data, model.get_params(), rng, radius=0.0)


class TestAssumption1:
    def test_constants_positive_and_consistent(self, rng):
        m = 6
        gen = np.random.default_rng(0)
        prob = FedLProblem(
            EpochInputs(
                tau=gen.uniform(0.1, 2.0, m),
                costs=gen.uniform(0.5, 3.0, m),
                available=np.ones(m, bool),
                eta_hat=gen.uniform(0.1, 0.8, m),
                loss_gap=0.3,
                loss_sensitivity=np.full(m, -0.1),
                remaining_budget=50.0,
                min_participants=2,
            ),
            rho_max=6.0,
        )
        g_f, g_h, radius = assumption1_constants(prob, rng)
        assert g_f > 0 and g_h > 0 and radius > 0
        # R is half the box diagonal: sqrt(m·1 + (ρmax−1)²)/2.
        expected_r = 0.5 * np.sqrt(m + (6.0 - 1.0) ** 2)
        assert radius == pytest.approx(expected_r)
        # The sampled gradient bound is at least the ρ-direction component
        # at some sampled point: f's ∂ρ = Σ x τ <= Σ τ.
        assert g_f <= 6.0 * np.sqrt(prob.inputs.tau @ prob.inputs.tau) * np.sqrt(m + 1)


class TestBands:
    def test_round_aggregation(self):
        traces = [make_trace("A", [0.1, 0.2, 0.3]), make_trace("A", [0.3, 0.4, 0.5, 0.6])]
        band = aggregate_on_rounds(traces)
        np.testing.assert_allclose(band.x, [1, 2, 3])        # shortest horizon
        np.testing.assert_allclose(band.mean, [0.2, 0.3, 0.4])
        assert np.all(band.std > 0)

    def test_time_aggregation_step_function(self):
        traces = [make_trace("A", [0.5, 1.0], dt=1.0)]
        band = aggregate_on_times(traces, num_points=5)
        # grid [0, .5, 1, 1.5, 2]; nothing finished before t=1.
        np.testing.assert_allclose(band.mean, [0.0, 0.0, 0.5, 0.5, 1.0])

    def test_band_validation(self):
        with pytest.raises(ValueError):
            Band(x=np.zeros(3), mean=np.zeros(2), std=np.zeros(3))
        with pytest.raises(ValueError):
            aggregate_on_rounds([])
        with pytest.raises(ValueError):
            aggregate_on_times([make_trace("A", [0.1])], num_points=1)


class TestMultiSeed:
    def test_groups_by_policy(self):
        out = multi_seed_suite(
            "fmnist", True, seeds=(0, 1),
            budget=60.0, num_clients=8, max_epochs=3, policies=("FedAvg",),
        )
        assert set(out) == {"FedAvg"}
        assert len(out["FedAvg"]) == 2

    def test_seeds_produce_different_traces(self):
        out = multi_seed_suite(
            "fmnist", True, seeds=(0, 1),
            budget=60.0, num_clients=8, max_epochs=3, policies=("FedAvg",),
        )
        a, b = out["FedAvg"]
        assert not np.array_equal(a.accuracy, b.accuracy)

    def test_empty_seeds_rejected(self):
        with pytest.raises(ValueError):
            multi_seed_suite("fmnist", True, seeds=())
