"""Layer-level tests: forward shapes and finite-difference gradient checks.

Every backward pass is verified against central finite differences on both
the input and the parameters — the strongest correctness evidence a
hand-derived backprop can have.
"""

import numpy as np
import pytest

from repro.nn.activations import ReLU, Sigmoid, Tanh
from repro.nn.conv import Conv2D, col2im, im2col
from repro.nn.linear import Flatten, Linear, Reshape
from repro.nn.module import Module, Parameter, Sequential
from repro.nn.pooling import AvgPool2D, MaxPool2D


def numerical_input_grad(layer: Module, x: np.ndarray, seed=0, eps=1e-6):
    """Finite-difference gradient of sum(layer(x) * R) w.r.t. x."""
    rng = np.random.default_rng(seed)
    r = rng.normal(size=layer.forward(x).shape)
    grad = np.zeros_like(x)
    flat = x.ravel()
    gflat = grad.ravel()
    for i in range(flat.size):
        old = flat[i]
        flat[i] = old + eps
        up = float((layer.forward(x) * r).sum())
        flat[i] = old - eps
        dn = float((layer.forward(x) * r).sum())
        flat[i] = old
        gflat[i] = (up - dn) / (2 * eps)
    return r, grad


def check_layer_grads(layer: Module, x: np.ndarray, atol=1e-5):
    """Compare analytic backward() to finite differences (input + params)."""
    r, num_gx = numerical_input_grad(layer, x)
    layer.zero_grad()
    layer.forward(x)
    ana_gx = layer.backward(r)
    np.testing.assert_allclose(ana_gx, num_gx, atol=atol)
    # parameter grads
    for p in layer.parameters():
        num = np.zeros_like(p.value)
        flat = p.value.ravel()
        nflat = num.ravel()
        eps = 1e-6
        for i in range(flat.size):
            old = flat[i]
            flat[i] = old + eps
            up = float((layer.forward(x) * r).sum())
            flat[i] = old - eps
            dn = float((layer.forward(x) * r).sum())
            flat[i] = old
            nflat[i] = (up - dn) / (2 * eps)
        np.testing.assert_allclose(p.grad, num, atol=atol)


class TestLinear:
    def test_forward_shape(self, rng):
        layer = Linear(4, 3, rng=rng)
        assert layer.forward(np.zeros((5, 4))).shape == (5, 3)

    def test_forward_value(self):
        layer = Linear(2, 2)
        layer.weight.value[...] = np.eye(2)
        layer.bias.value[...] = [1.0, -1.0]
        out = layer.forward(np.array([[2.0, 3.0]]))
        np.testing.assert_allclose(out, [[3.0, 2.0]])

    def test_gradients(self, rng):
        check_layer_grads(Linear(3, 2, rng=rng), rng.normal(size=(4, 3)))

    def test_rejects_wrong_input_dim(self, rng):
        with pytest.raises(ValueError):
            Linear(3, 2, rng=rng).forward(np.zeros((4, 5)))

    def test_backward_before_forward_raises(self, rng):
        with pytest.raises(RuntimeError):
            Linear(3, 2, rng=rng).backward(np.zeros((4, 2)))


class TestShapeAdapters:
    def test_flatten_round_trip(self, rng):
        f = Flatten()
        x = rng.normal(size=(2, 3, 4))
        out = f.forward(x)
        assert out.shape == (2, 12)
        back = f.backward(out)
        assert back.shape == x.shape

    def test_reshape_round_trip(self, rng):
        r = Reshape((3, 4, 1))
        x = rng.normal(size=(2, 12))
        out = r.forward(x)
        assert out.shape == (2, 3, 4, 1)
        assert r.backward(out).shape == (2, 12)

    def test_reshape_validation(self):
        with pytest.raises(ValueError):
            Reshape((0, 3))


class TestActivations:
    @pytest.mark.parametrize("cls", [ReLU, Tanh, Sigmoid])
    def test_gradients(self, cls, rng):
        check_layer_grads(cls(), rng.normal(size=(3, 5)))

    def test_relu_values(self):
        out = ReLU().forward(np.array([[-1.0, 2.0]]))
        np.testing.assert_array_equal(out, [[0.0, 2.0]])

    def test_sigmoid_stable_extremes(self):
        out = Sigmoid().forward(np.array([[-1000.0, 1000.0]]))
        assert np.all(np.isfinite(out))
        np.testing.assert_allclose(out, [[0.0, 1.0]], atol=1e-12)

    def test_tanh_range(self, rng):
        out = Tanh().forward(rng.normal(size=(10, 10)) * 100)
        assert np.all(np.abs(out) <= 1.0)


class TestIm2Col:
    def test_round_trip_adjointness(self, rng):
        """<im2col(x), y> == <x, col2im(y)> — exact adjoint pair."""
        x = rng.normal(size=(2, 6, 6, 3))
        cols, oh, ow = im2col(x, 3, 3, 1)
        y = rng.normal(size=cols.shape)
        lhs = float((cols * y).sum())
        back = col2im(y, x.shape, 3, 3, 1)
        rhs = float((x * back).sum())
        assert lhs == pytest.approx(rhs, rel=1e-10)

    def test_output_size(self, rng):
        x = rng.normal(size=(1, 5, 7, 2))
        cols, oh, ow = im2col(x, 3, 3, 2)
        assert (oh, ow) == (2, 3)
        assert cols.shape == (1, 6, 18)

    def test_kernel_too_large(self, rng):
        with pytest.raises(ValueError):
            im2col(rng.normal(size=(1, 2, 2, 1)), 3, 3, 1)


class TestConv2D:
    def test_forward_shape(self, rng):
        conv = Conv2D(2, 4, kernel_size=3, rng=rng)
        out = conv.forward(rng.normal(size=(2, 6, 6, 2)))
        assert out.shape == (2, 4, 4, 4)

    def test_known_convolution(self):
        conv = Conv2D(1, 1, kernel_size=2)
        conv.kernel.value[...] = 1.0   # sums each 2x2 window
        conv.bias.value[...] = 0.0
        x = np.arange(9.0).reshape(1, 3, 3, 1)
        out = conv.forward(x)
        # windows: [0,1,3,4]=8, [1,2,4,5]=12, [3,4,6,7]=20, [4,5,7,8]=24
        np.testing.assert_allclose(out[0, :, :, 0], [[8, 12], [20, 24]])

    def test_gradients(self, rng):
        conv = Conv2D(2, 3, kernel_size=2, rng=rng)
        check_layer_grads(conv, rng.normal(size=(2, 4, 4, 2)))

    def test_strided_gradients(self, rng):
        conv = Conv2D(1, 2, kernel_size=2, stride=2, rng=rng)
        check_layer_grads(conv, rng.normal(size=(2, 4, 4, 1)))

    def test_rejects_wrong_channels(self, rng):
        with pytest.raises(ValueError):
            Conv2D(3, 2, 3, rng=rng).forward(np.zeros((1, 5, 5, 2)))


class TestPooling:
    def test_max_pool_values(self):
        x = np.arange(16.0).reshape(1, 4, 4, 1)
        out = MaxPool2D(2).forward(x)
        np.testing.assert_allclose(out[0, :, :, 0], [[5, 7], [13, 15]])

    def test_avg_pool_values(self):
        x = np.arange(16.0).reshape(1, 4, 4, 1)
        out = AvgPool2D(2).forward(x)
        np.testing.assert_allclose(out[0, :, :, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_max_pool_gradients(self, rng):
        check_layer_grads(MaxPool2D(2), rng.normal(size=(2, 4, 4, 3)))

    def test_avg_pool_gradients(self, rng):
        check_layer_grads(AvgPool2D(2), rng.normal(size=(2, 4, 4, 3)))

    def test_max_pool_tie_gradient_sums_to_one(self):
        """Equal window values share the gradient (sums preserved)."""
        pool = MaxPool2D(2)
        x = np.ones((1, 2, 2, 1))
        pool.forward(x)
        g = pool.backward(np.ones((1, 1, 1, 1)))
        assert g.sum() == pytest.approx(1.0)

    def test_indivisible_raises(self):
        with pytest.raises(ValueError):
            MaxPool2D(3).forward(np.zeros((1, 4, 4, 1)))


class TestModuleFlatVector:
    def test_round_trip(self, rng):
        net = Sequential([Linear(4, 3, rng=rng), ReLU(), Linear(3, 2, rng=rng)])
        w = net.get_flat_params()
        assert w.size == net.num_params == 4 * 3 + 3 + 3 * 2 + 2
        w2 = rng.normal(size=w.size)
        net.set_flat_params(w2)
        np.testing.assert_allclose(net.get_flat_params(), w2)

    def test_set_wrong_size(self, rng):
        net = Sequential([Linear(2, 2, rng=rng)])
        with pytest.raises(ValueError):
            net.set_flat_params(np.zeros(3))

    def test_zero_grad(self, rng):
        net = Sequential([Linear(2, 2, rng=rng)])
        net.forward(np.ones((1, 2)))
        net.backward(np.ones((1, 2)))
        assert np.any(net.get_flat_grads() != 0)
        net.zero_grad()
        np.testing.assert_array_equal(net.get_flat_grads(), 0.0)

    def test_empty_sequential_rejected(self):
        with pytest.raises(ValueError):
            Sequential([])

    def test_grad_accumulation(self, rng):
        """Two backward passes without zero_grad accumulate."""
        layer = Linear(2, 1, rng=rng)
        x = np.ones((1, 2))
        layer.forward(x)
        layer.backward(np.ones((1, 1)))
        g1 = layer.weight.grad.copy()
        layer.forward(x)
        layer.backward(np.ones((1, 1)))
        np.testing.assert_allclose(layer.weight.grad, 2 * g1)
