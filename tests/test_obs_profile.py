"""Phase profiler: tree construction, self time, rendering, diffing."""

import pytest

from repro.obs import (
    PROFILE_SCHEMA_VERSION,
    Telemetry,
    build_profile,
    diff_profiles,
    engine_counts,
    profile_directory,
    render_diff,
    render_profile,
    use_telemetry,
)
from repro.obs.profile import _parent_of


def timer(count, total, lo=0.0, hi=0.0):
    return {"count": count, "total_s": total, "min_s": lo, "max_s": hi}


def manifest_with(timers, event_counts=None):
    return {
        "registry": {"timers": timers, "counters": {}, "gauges": {}},
        "event_counts": event_counts or {},
    }


class TestParentResolution:
    def test_declared_edges_apply_when_parent_exists(self):
        names = {"sweep.job", "experiment.round", "round.local_solve"}
        assert _parent_of("experiment.round", names) == "sweep.job"
        assert _parent_of("round.local_solve", names) == "experiment.round"

    def test_declared_edge_skipped_when_parent_absent(self):
        # A plain `repro run` has no sweep.job timer: experiment.* are roots.
        names = {"experiment.round", "round.local_solve"}
        assert _parent_of("experiment.round", names) is None
        assert _parent_of("round.local_solve", names) == "experiment.round"

    def test_lexical_fallback(self):
        names = {"bench", "bench.fl", "bench.fl.loop"}
        assert _parent_of("bench.fl.loop", names) == "bench.fl"
        assert _parent_of("bench.fl", names) == "bench"
        assert _parent_of("bench", names) is None

    def test_solver_nests_under_select(self):
        names = {"experiment.select", "solver.projected_gradient"}
        assert _parent_of("solver.projected_gradient", names) == "experiment.select"


class TestBuildProfile:
    def test_self_time_subtracts_direct_children(self):
        prof = build_profile(
            manifest_with(
                {
                    "experiment.round": timer(2, 10.0),
                    "round.local_solve": timer(4, 6.0),
                    "round.aggregate": timer(4, 1.0),
                },
                {"epoch.complete": 2},
            )
        )
        assert prof["v"] == PROFILE_SCHEMA_VERSION
        node = prof["phases"]["experiment.round"]
        assert node["self_s"] == pytest.approx(3.0)
        assert node["children"] == ["round.aggregate", "round.local_solve"]
        assert prof["roots"] == ["experiment.round"]
        assert prof["epochs"] == 2

    def test_self_time_clamped_at_zero(self):
        # Children can sum past the parent (clock jitter); never negative.
        prof = build_profile(
            manifest_with(
                {
                    "experiment.round": timer(1, 1.0),
                    "round.local_solve": timer(1, 1.5),
                }
            )
        )
        assert prof["phases"]["experiment.round"]["self_s"] == 0.0

    def test_depths(self):
        prof = build_profile(
            manifest_with(
                {
                    "sweep.job": timer(1, 5.0),
                    "experiment.round": timer(1, 3.0),
                    "round.local_solve": timer(1, 2.0),
                }
            )
        )
        phases = prof["phases"]
        assert phases["sweep.job"]["depth"] == 0
        assert phases["experiment.round"]["depth"] == 1
        assert phases["round.local_solve"]["depth"] == 2


class TestRendering:
    PROF = build_profile(
        manifest_with(
            {
                "experiment.round": timer(2, 10.0),
                "round.local_solve": timer(4, 6.0),
            },
            {"epoch.complete": 2, "run.complete": 1},
        ),
        engines={"batched": 2},
    )

    def test_render_is_deterministic(self):
        assert render_profile(self.PROF) == render_profile(self.PROF)

    def test_render_contents(self):
        text = render_profile(self.PROF, top=5)
        assert "engines: batchedx2" in text
        assert "epochs: 2" in text
        assert "  round.local_solve" in text  # indented under its parent
        assert "hot phases (self time, top 5):" in text
        assert "per-epoch" in text

    def test_empty_profile(self):
        text = render_profile(build_profile(manifest_with({})))
        assert "(no timers recorded)" in text


class TestDiff:
    A = build_profile(manifest_with({"experiment.round": timer(2, 1.0)}))
    B = build_profile(
        manifest_with(
            {"experiment.round": timer(2, 2.0), "round.aggregate": timer(2, 0.1)}
        )
    )

    def test_regression_flagged_past_5pct(self):
        rows = diff_profiles(self.A, self.B)
        by_name = {r["phase"]: r for r in rows}
        row = by_name["experiment.round"]
        assert row["mean_delta_pct"] == pytest.approx(100.0)
        assert row["regressed"] is True

    def test_new_phase_has_no_mean_delta(self):
        rows = diff_profiles(self.A, self.B)
        by_name = {r["phase"]: r for r in rows}
        assert by_name["round.aggregate"]["mean_delta_pct"] is None
        assert by_name["round.aggregate"]["regressed"] is False

    def test_rows_ordered_by_total_delta(self):
        rows = diff_profiles(self.A, self.B)
        deltas = [abs(r["total_delta_s"]) for r in rows]
        assert deltas == sorted(deltas, reverse=True)

    def test_render_diff_marks_regressions(self):
        text = render_diff(self.A, self.B)
        assert " !" in text
        assert "regressed phase(s)" in text

    def test_self_diff_is_clean(self):
        text = render_diff(self.A, self.A)
        assert "no per-call regressions past 5%" in text
        assert " !" not in text


class TestDirectoryProfile:
    def test_none_without_manifest(self, tmp_path):
        assert profile_directory(tmp_path) is None

    def test_profile_real_trace(self, tmp_path):
        hub = Telemetry.for_directory(tmp_path, run_id="r0")
        with use_telemetry(hub):
            with hub.timer("experiment.round"):
                with hub.timer("round.local_solve"):
                    pass
            hub.emit(
                "round.complete", epoch=0, data={"engine": "batched"}
            )
            hub.emit("epoch.complete", epoch=0, data={})
        hub.finalize(meta={})
        prof = profile_directory(tmp_path)
        assert prof is not None
        assert prof["engines"] == {"batched": 1}
        assert (
            prof["phases"]["round.local_solve"]["parent"] == "experiment.round"
        )
        assert engine_counts(tmp_path) == {"batched": 1}
        # Byte-determinism: same directory, same rendering.
        assert render_profile(prof) == render_profile(profile_directory(tmp_path))
