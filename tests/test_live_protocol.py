"""Tests for the live engine's framed socket transport.

Pins the :class:`repro.live.protocol.FrameStream` contract: frames
round-trip metadata and arrays bit-exactly over both transports, a
clean EOF at a frame boundary reads as ``None``, a torn stream raises
the same typed :class:`TruncatedPayloadError` as a torn on-disk
payload, and garbled length prefixes fail loudly instead of allocating.
"""

import threading

import numpy as np
import pytest

from repro.live.protocol import (
    MAX_FRAME_BYTES,
    FrameStream,
    recv_exact,
    socket_pair,
    tcp_pair,
)
from repro.nn.serialization import PayloadError, TruncatedPayloadError


@pytest.fixture(params=["unix", "tcp"])
def pair(request):
    a, b = socket_pair() if request.param == "unix" else tcp_pair()
    sa, sb = FrameStream(a), FrameStream(b)
    yield sa, sb
    sa.close()
    sb.close()


class TestFrameRoundTrip:
    def test_meta_and_arrays(self, pair, rng):
        a, b = pair
        w = rng.normal(size=37)
        a.send({"cmd": "iter", "iteration": 3}, {"w": w, "g": w * 2})
        meta, arrays = b.recv()
        assert meta == {"cmd": "iter", "iteration": 3}
        np.testing.assert_array_equal(arrays["w"], w)
        np.testing.assert_array_equal(arrays["g"], w * 2)

    def test_empty_arrays(self, pair):
        a, b = pair
        a.send({"cmd": "stop"})
        meta, arrays = b.recv()
        assert meta == {"cmd": "stop"}
        assert arrays == {}

    def test_many_frames_in_order(self, pair):
        a, b = pair
        for i in range(20):
            a.send({"i": i})
        assert [b.recv()[0]["i"] for i in range(20)] == list(range(20))

    def test_large_frame(self, pair, rng):
        a, b = pair
        big = rng.normal(size=200_000)  # 1.6 MB, spans many recv() calls
        done = threading.Thread(target=a.send, args=({"cmd": "chunk"}, {"b": big}))
        done.start()
        _, arrays = b.recv()
        done.join()
        np.testing.assert_array_equal(arrays["b"], big)

    def test_interleaved_writers_never_tear(self, pair, rng):
        a, b = pair
        arrs = {i: rng.normal(size=500) for i in range(8)}
        threads = [
            threading.Thread(target=a.send, args=({"i": i}, {"x": arrs[i]}))
            for i in arrs
        ]
        for t in threads:
            t.start()
        got = {}
        for _ in arrs:
            meta, arrays = b.recv()
            got[meta["i"]] = arrays["x"]
        for t in threads:
            t.join()
        assert set(got) == set(arrs)
        for i, x in arrs.items():
            np.testing.assert_array_equal(got[i], x)


class TestStreamFailureModes:
    def test_clean_eof_is_none(self, pair):
        a, b = pair
        a.close()
        assert b.recv() is None

    def test_torn_frame_raises_typed(self, pair):
        a, b = pair
        # length prefix promises 100 bytes, peer dies after 10
        a.sock.sendall((100).to_bytes(4, "little") + b"x" * 10)
        a.close()
        with pytest.raises(TruncatedPayloadError):
            b.recv()

    def test_implausible_length_rejected(self, pair):
        a, b = pair
        a.sock.sendall((MAX_FRAME_BYTES + 1).to_bytes(4, "little"))
        with pytest.raises(PayloadError):
            b.recv()

    def test_zero_length_rejected(self, pair):
        a, b = pair
        a.sock.sendall((0).to_bytes(4, "little"))
        with pytest.raises(PayloadError):
            b.recv()

    def test_corrupt_payload_raises(self, pair):
        a, b = pair
        a.sock.sendall((4).to_bytes(4, "little") + b"junk")
        with pytest.raises(PayloadError):
            b.recv()

    def test_recv_exact_eof(self):
        a, b = socket_pair()
        a.close()
        with pytest.raises(TruncatedPayloadError):
            recv_exact(b, 8)
        b.close()
