"""Determinism regression tests for the sweep engine.

The engine's contract is that execution is a pure function of the job
value: the same (policy spec, config) yields a bit-identical
``ExperimentResult`` whether run twice serially, through the engine's
serial fallback, or fanned out over a process pool — including the
stochastic failure-injection and Markov-availability environment paths.
"""

from dataclasses import replace

import pytest

from repro.experiments.figures import run_policy_suite
from repro.experiments.runner import run_experiment
from repro.experiments.scenarios import experiment_config, make_policy
from repro.experiments.sweep import (
    PolicySpec,
    SweepJob,
    execute_job,
    results_identical,
    run_sweep,
)
from repro.rng import RngFactory


def tiny_config(seed=0, variant="plain", **overrides):
    cfg = experiment_config(
        dataset="fmnist",
        iid=True,
        budget=120.0,
        seed=seed,
        num_clients=8,
        min_participants=3,
        max_epochs=3,
    )
    if variant == "failures":
        cfg = cfg.replace(population=replace(cfg.population, failure_prob=0.3))
    elif variant == "markov":
        cfg = cfg.replace(
            population=replace(cfg.population, availability_model="markov")
        )
    elif variant != "plain":
        raise ValueError(variant)
    if overrides:
        cfg = cfg.replace(**overrides)
    return cfg


VARIANTS = ("plain", "failures", "markov")


class TestSerialDeterminism:
    @pytest.mark.parametrize("variant", VARIANTS)
    @pytest.mark.parametrize("policy", ["FedL", "FedAvg"])
    def test_two_serial_runs_bit_identical(self, variant, policy):
        job = SweepJob(PolicySpec(policy), tiny_config(variant=variant))
        first = execute_job(job)
        second = execute_job(job)
        assert len(first.trace) > 0
        assert results_identical(first, second)

    def test_engine_matches_hand_loop(self):
        """workers=1 through the engine == the historical serial loop."""
        cfg = tiny_config()
        direct = run_experiment(
            make_policy("FedAvg", cfg, RngFactory(cfg.seed).get("policy.FedAvg")),
            cfg,
        )
        (via_engine,) = run_sweep([("FedAvg", cfg)], workers=1)
        assert results_identical(direct, via_engine)

    def test_suite_matches_pre_engine_seeding(self):
        """run_policy_suite still derives each policy RNG from
        RngFactory(seed).get(f"policy.{name}") — the pre-engine stream."""
        traces = run_policy_suite(
            "fmnist", True, budget=120.0, seed=3, num_clients=8, max_epochs=3,
            policies=("FedAvg",),
        )
        cfg = experiment_config(
            dataset="fmnist", iid=True, budget=120.0, seed=3,
            num_clients=8, max_epochs=3,
        )
        direct = run_experiment(
            make_policy("FedAvg", cfg, RngFactory(3).get("policy.FedAvg")), cfg
        )
        assert traces["FedAvg"].equals(direct.trace)


class TestParallelDeterminism:
    def test_parallel_sweep_matches_serial(self):
        """2 policies × 4 seeds: workers=4 output is bit-identical to
        workers=1, in the same job order."""
        jobs = [
            SweepJob(PolicySpec(name), tiny_config(seed=seed))
            for name in ("FedL", "FedAvg")
            for seed in range(4)
        ]
        serial = run_sweep(jobs, workers=1)
        parallel = run_sweep(jobs, workers=4)
        assert len(serial) == len(parallel) == 8
        for a, b in zip(serial, parallel):
            assert results_identical(a, b)

    @pytest.mark.parametrize("variant", ["failures", "markov"])
    def test_parallel_matches_serial_on_stochastic_env_paths(self, variant):
        jobs = [
            SweepJob(PolicySpec("FedAvg"), tiny_config(seed=seed, variant=variant))
            for seed in range(2)
        ]
        serial = run_sweep(jobs, workers=1)
        parallel = run_sweep(jobs, workers=2)
        for a, b in zip(serial, parallel):
            assert results_identical(a, b)

    def test_seeds_actually_differ(self):
        """Sanity: determinism is not degeneracy — different seeds give
        different trajectories."""
        a, b = run_sweep(
            [
                SweepJob(PolicySpec("FedAvg"), tiny_config(seed=0)),
                SweepJob(PolicySpec("FedAvg"), tiny_config(seed=1)),
            ],
            workers=1,
        )
        assert not results_identical(a, b)

    def test_duplicate_jobs_get_equal_independent_results(self):
        job = SweepJob(PolicySpec("FedAvg"), tiny_config())
        a, b = run_sweep([job, job], workers=1)
        assert results_identical(a, b)
        # Mutating one trace must not leak into the other.
        b.trace.records.pop()
        assert len(a.trace) == len(b.trace) + 1
