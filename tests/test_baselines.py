"""Tests for the selection-policy protocol and the four baselines."""

import numpy as np
import pytest

from repro.baselines.base import (
    Decision,
    EpochContext,
    RoundFeedback,
    SelectionPolicy,
    enforce_feasibility,
)
from repro.baselines.fedavg import FedAvgPolicy
from repro.baselines.fedcs import FedCSPolicy
from repro.baselines.oracle import GreedyOraclePolicy, best_subset_max_latency
from repro.baselines.pow_d import PowDPolicy
from repro.core.fedl import FedLPolicy


def make_ctx(m=10, n=3, budget=100.0, seed=0, **overrides):
    rng = np.random.default_rng(seed)
    defaults = dict(
        t=0,
        available=np.ones(m, bool),
        costs=rng.uniform(0.5, 5.0, m),
        remaining_budget=budget,
        min_participants=n,
        tau_last=rng.uniform(0.1, 2.0, m),
        local_losses=rng.uniform(0.5, 3.0, m),
        tau_oracle=rng.uniform(0.1, 2.0, m),
    )
    defaults.update(overrides)
    return EpochContext(**defaults)


def make_feedback(m=10, seed=0):
    rng = np.random.default_rng(seed)
    sel = np.zeros(m, bool)
    sel[:3] = True
    return RoundFeedback(
        t=0,
        selected=sel,
        tau_realized=rng.uniform(0.1, 2.0, m),
        local_etas=np.where(sel, 0.7, np.nan),
        local_losses=rng.uniform(0.5, 3.0, m),
        population_loss=1.2,
        cost_spent=5.0,
        epoch_latency=0.8,
    )


class TestContextAndDecision:
    def test_ctx_validation(self):
        with pytest.raises(ValueError):
            make_ctx(costs=np.ones(3))
        with pytest.raises(ValueError):
            make_ctx(min_participants=0)

    def test_affordable(self):
        ctx = make_ctx(costs=np.full(10, 2.0), budget=5.0)
        mask = np.zeros(10, bool)
        mask[:2] = True
        assert ctx.affordable(mask)
        mask[2] = True
        assert not ctx.affordable(mask)

    def test_decision_validation(self):
        with pytest.raises(ValueError):
            Decision(selected=np.zeros(5, bool), iterations=1)
        with pytest.raises(ValueError):
            Decision(selected=np.ones(5, bool), iterations=0)

    def test_policies_satisfy_protocol(self, rng):
        for pol in (
            FedAvgPolicy(rng),
            FedCSPolicy(rng),
            PowDPolicy(rng),
            GreedyOraclePolicy(rng),
        ):
            assert isinstance(pol, SelectionPolicy)


class TestEnforceFeasibility:
    def test_drops_unavailable(self, rng):
        ctx = make_ctx(available=np.array([True] * 5 + [False] * 5))
        mask = np.ones(10, bool)
        out = enforce_feasibility(mask, ctx, rng)
        assert not out[5:].any()

    def test_tops_up_to_n_with_cheapest(self, rng):
        costs = np.arange(1.0, 11.0)
        ctx = make_ctx(costs=costs, n=4)
        out = enforce_feasibility(np.zeros(10, bool), ctx, rng)
        assert out.sum() == 4
        assert out[:4].all()  # the four cheapest

    def test_trims_most_expensive_over_budget(self, rng):
        costs = np.array([1.0, 1.0, 1.0, 50.0, 2.0])
        ctx = make_ctx(m=5, n=3, costs=costs, budget=6.0)
        out = enforce_feasibility(np.ones(5, bool), ctx, rng)
        assert not out[3]          # the expensive one went first
        assert out.sum() >= 3

    def test_never_below_n(self, rng):
        ctx = make_ctx(m=5, n=3, costs=np.full(5, 10.0), budget=1.0)
        out = enforce_feasibility(np.ones(5, bool), ctx, rng)
        assert out.sum() == 3      # over budget, but the floor holds


class TestFedAvg:
    def test_selects_exactly_n(self, rng):
        pol = FedAvgPolicy(rng)
        d = pol.select(make_ctx(n=4))
        assert d.selected.sum() == 4

    def test_only_available(self, rng):
        avail = np.zeros(10, bool)
        avail[2:7] = True
        d = FedAvgPolicy(rng).select(make_ctx(available=avail, n=3))
        assert not d.selected[~avail].any()

    def test_random_across_calls(self, rng):
        pol = FedAvgPolicy(rng)
        picks = {tuple(pol.select(make_ctx(n=3)).selected) for _ in range(20)}
        assert len(picks) > 1

    def test_update_is_noop(self, rng):
        FedAvgPolicy(rng).update(make_feedback())

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            FedAvgPolicy(rng, iterations=0)


class TestFedCS:
    def test_prefers_fast_clients(self, rng):
        tau = np.arange(1.0, 11.0)
        d = FedCSPolicy(rng, deadline_s=8.0, iterations=2).select(
            make_ctx(tau_last=tau, n=2, budget=1e6)
        )
        # deadline 8 → admits tau <= 4 → clients 0..3.
        assert d.selected[:4].all()
        assert not d.selected[4:].any()

    def test_selects_more_than_n_when_deadline_allows(self, rng):
        d = FedCSPolicy(rng, deadline_s=1e9).select(make_ctx(n=2, budget=1e6))
        assert d.selected.sum() == 10  # everyone admitted

    def test_adaptive_deadline_middle_ground(self, rng):
        d = FedCSPolicy(rng, adaptive_quantile=0.6).select(make_ctx(n=2, budget=1e6))
        assert 2 <= d.selected.sum() <= 8

    def test_budget_limits_admission(self, rng):
        ctx = make_ctx(n=2, budget=3.0, costs=np.full(10, 1.0))
        d = FedCSPolicy(rng, deadline_s=1e9).select(ctx)
        assert d.selected.sum() <= 3

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            FedCSPolicy(rng, deadline_s=0.0)
        with pytest.raises(ValueError):
            FedCSPolicy(rng, adaptive_quantile=0.0)


class TestPowD:
    def test_picks_highest_loss_among_candidates(self, rng):
        losses = np.arange(10.0)
        pol = PowDPolicy(rng, d=10)  # all clients are candidates
        d = pol.select(make_ctx(local_losses=losses, n=3, budget=1e6))
        assert d.selected[[7, 8, 9]].all()

    def test_nan_losses_rank_last(self, rng):
        losses = np.array([np.nan] * 8 + [5.0, 6.0])
        pol = PowDPolicy(rng, d=10)
        d = pol.select(make_ctx(local_losses=losses, n=2, budget=1e6))
        assert d.selected[[8, 9]].all()

    def test_candidate_subsampling(self, rng):
        pol = PowDPolicy(rng, d=3)
        d = pol.select(make_ctx(n=2))
        assert d.selected.sum() >= 2

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            PowDPolicy(rng, d=0)


class TestOracle:
    def test_best_subset_min_max_latency(self):
        tau = np.array([5.0, 1.0, 2.0, 9.0])
        costs = np.ones(4)
        mask = best_subset_max_latency(tau, costs, n=2, budget=10.0)
        assert mask is not None
        assert mask[[1, 2]].all()      # the two fastest

    def test_best_subset_respects_budget(self):
        tau = np.array([1.0, 2.0, 3.0])
        costs = np.array([100.0, 1.0, 1.0])
        mask = best_subset_max_latency(tau, costs, n=2, budget=5.0)
        assert mask is not None
        assert not mask[0]

    def test_best_subset_none_when_unaffordable(self):
        mask = best_subset_max_latency(np.ones(3), np.full(3, 10.0), n=2, budget=5.0)
        assert mask is None

    def test_oracle_requires_tau_oracle(self, rng):
        pol = GreedyOraclePolicy(rng)
        ctx = make_ctx(tau_oracle=None)
        with pytest.raises(ValueError):
            pol.select(ctx)

    def test_oracle_uses_true_latency(self, rng):
        tau_true = np.array([9.0] * 9 + [0.1])
        ctx = make_ctx(
            tau_oracle=tau_true, n=1, tau_last=np.full(10, 1.0), budget=1e6
        )
        d = GreedyOraclePolicy(rng).select(ctx)
        assert d.selected[9]

    def test_oracle_beats_honest_policies_on_current_epoch(self, rng):
        """The defining property: per-epoch max-latency of the oracle's
        pick is <= any honest policy's (same n, both feasible)."""
        for seed in range(10):
            ctx = make_ctx(seed=seed, n=3, budget=1e6)
            oracle = GreedyOraclePolicy(rng).select(ctx)
            honest = FedAvgPolicy(rng).select(ctx)
            lat_o = ctx.tau_oracle[oracle.selected].max()
            lat_h = ctx.tau_oracle[honest.selected].max()
            assert lat_o <= lat_h + 1e-12


class TestFedLPolicyIntegration:
    def test_select_and_update_cycle(self, rng):
        pol = FedLPolicy(
            num_clients=10, budget=100.0, min_participants=3, theta=0.5, rng=rng
        )
        ctx = make_ctx(n=3)
        d = pol.select(ctx)
        assert d.selected.sum() >= 3
        assert d.iterations >= 1
        assert np.isfinite(d.rho)
        pol.update(make_feedback())
        # duals remain nonnegative after realized feedback
        assert np.all(pol.mu >= 0)

    def test_eta_estimates_track_observations(self, rng):
        pol = FedLPolicy(
            num_clients=10, budget=100.0, min_participants=3, theta=0.5, rng=rng
        )
        fb = make_feedback()
        before = pol.eta_hat.copy()
        pol.update(fb)
        observed = np.isfinite(fb.local_etas)
        assert np.all(pol.eta_hat[observed] != before[observed])
        np.testing.assert_array_equal(pol.eta_hat[~observed], before[~observed])

    def test_selection_concentrates_on_fast_clients(self, rng):
        """After repeated epochs with stable latencies, FedL's fractional
        mass concentrates on the fastest clients."""
        m, n = 10, 3
        tau = np.concatenate([np.full(3, 0.05), np.full(7, 3.0)])
        pol = FedLPolicy(
            num_clients=m, budget=500.0, min_participants=n, theta=0.5, rng=rng
        )
        ctx = make_ctx(m=m, n=n, tau_last=tau, budget=500.0)
        for t in range(25):
            d = pol.select(ctx)
            fb = RoundFeedback(
                t=t,
                selected=d.selected,
                tau_realized=tau,
                local_etas=np.where(d.selected, 0.4, np.nan),
                local_losses=np.full(m, 0.4),
                population_loss=0.4,
                cost_spent=float(ctx.costs[d.selected].sum()),
                epoch_latency=float(tau[d.selected].max() * d.iterations),
            )
            pol.update(fb)
        frac = pol.phi.x
        assert frac[:3].sum() > frac[3:].sum()

    def test_independent_rounding_config(self, rng):
        from repro.config import FedLConfig

        pol = FedLPolicy(
            num_clients=10, budget=100.0, min_participants=3, theta=0.5, rng=rng,
            config=FedLConfig(rounding="independent"),
        )
        d = pol.select(make_ctx(n=3))
        assert d.selected.sum() >= 3
