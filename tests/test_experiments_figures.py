"""Tests for the figure-series generators (small scale)."""

import numpy as np
import pytest

from repro.experiments.figures import (
    accuracy_vs_round,
    accuracy_vs_time,
    budget_sweep,
    run_policy_suite,
)


@pytest.fixture(scope="module")
def tiny_suite():
    return run_policy_suite(
        "fmnist",
        iid=True,
        budget=80.0,
        num_clients=8,
        max_epochs=5,
        policies=("FedL", "FedAvg"),
    )


class TestSuiteRunner:
    def test_runs_requested_policies_only(self, tiny_suite):
        assert set(tiny_suite) == {"FedL", "FedAvg"}

    def test_traces_nonempty(self, tiny_suite):
        for tr in tiny_suite.values():
            assert len(tr) >= 1

    def test_same_seed_shares_environment(self):
        """Two policies see the same channel/availability trajectory: the
        FIRST-epoch available count matches across policies (decisions
        cannot have diverged before the first selection)."""
        suite = run_policy_suite(
            "fmnist", True, budget=80.0, num_clients=8, max_epochs=2,
            policies=("FedAvg", "Pow-d"),
        )
        a = suite["FedAvg"].records[0].num_available
        b = suite["Pow-d"].records[0].num_available
        assert a == b


class TestSeriesShapes:
    def test_accuracy_vs_time_series(self, tiny_suite):
        series = accuracy_vs_time(tiny_suite)
        for name, pts in series.items():
            assert len(pts) == len(tiny_suite[name])
            xs = [p[0] for p in pts]
            assert xs == sorted(xs)  # time increases
            assert all(0.0 <= p[1] <= 1.0 for p in pts)

    def test_accuracy_vs_round_series(self, tiny_suite):
        series = accuracy_vs_round(tiny_suite)
        for pts in series.values():
            assert [p[0] for p in pts] == list(range(1, len(pts) + 1))

    def test_budget_sweep_series(self):
        series = budget_sweep(
            "fmnist", True, budgets=(40.0, 80.0),
            num_clients=8, max_epochs=4, policies=("FedAvg",),
        )
        pts = series["FedAvg"]
        assert [p[0] for p in pts] == [40.0, 80.0]
        assert all(np.isfinite(p[1]) for p in pts)
