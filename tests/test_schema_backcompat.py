"""Back-compat: committed v1-v4 result payloads load through the v5 reader.

The fixtures under ``tests/fixtures/`` are real (tiny) experiment
results serialized by the schema version named in the file, captured at
the moment each schema was superseded:

* ``results_v1.json`` — before the ``sim`` config section existed;
* ``results_v2.json`` — before the ``attack``/``defense`` sections;
* ``results_v3.json`` — before the sweep layer's ``policy``
  self-description rode along on the result;
* ``results_v4.json`` — before the ``checkpoint`` config section
  existed (and before the reader restored ``live``/``shard``).

(Only the first 8 weight entries are kept — the reader never validates
the weight vector's shape, and full fmnist weights would bloat the
fixtures 100×.)

Every old payload must keep loading, with documented defaults for the
fields it predates, for as long as its version stays in
``SUPPORTED_RESULT_SCHEMAS``.  Tournament reports get the same
torn-write guarantee as every other persisted artifact: a failed save
never clobbers the previous report and never litters temp files.
"""

import json
from pathlib import Path

import pytest

from repro.config import AttackConfig, CheckpointConfig, DefenseConfig, SimConfig
from repro.experiments.persistence import (
    RESULT_SCHEMA_VERSION,
    SUPPORTED_RESULT_SCHEMAS,
    load_results,
    result_from_dict,
    save_results,
)
from repro.experiments.tournament import (
    TOURNAMENT_SCHEMA_VERSION,
    load_report,
    save_report,
)

FIXTURES = Path(__file__).parent / "fixtures"
OLD_VERSIONS = (1, 2, 3, 4)


def fixture_path(version):
    return FIXTURES / f"results_v{version}.json"


class TestOldResultSchemasLoad:
    @pytest.mark.parametrize("version", OLD_VERSIONS)
    def test_committed_fixture_loads(self, version):
        assert version in SUPPORTED_RESULT_SCHEMAS
        results = load_results(fixture_path(version))
        result = results["FedAvg"]
        assert result.trace.policy_name == "FedAvg"
        assert len(result.trace) == 2
        assert result.stop_reason
        # The "policy" self-description is a v4 addition.
        if version < 4:
            assert result.policy is None
        else:
            assert result.policy == {
                "name": "FedAvg", "stream": "policy.FedAvg"
            }

    @pytest.mark.parametrize("version", OLD_VERSIONS)
    def test_inner_payload_loads_directly(self, version):
        payload = json.loads(fixture_path(version).read_text())
        result = result_from_dict(payload["results"]["FedAvg"])
        assert result.config.seed == 0

    def test_v1_gets_default_sim_section(self):
        cfg = load_results(fixture_path(1))["FedAvg"].config
        assert cfg.sim == SimConfig()

    def test_v2_gets_default_attack_and_defense(self):
        cfg = load_results(fixture_path(2))["FedAvg"].config
        assert cfg.attack == AttackConfig()
        assert cfg.defense == DefenseConfig()

    @pytest.mark.parametrize("version", OLD_VERSIONS)
    def test_pre_v5_gets_default_checkpoint_section(self, version):
        cfg = load_results(fixture_path(version))["FedAvg"].config
        assert cfg.checkpoint == CheckpointConfig()
        assert cfg.checkpoint.directory is None

    @pytest.mark.parametrize("version", OLD_VERSIONS)
    def test_resave_upgrades_to_current_schema(self, version, tmp_path):
        results = load_results(fixture_path(version))
        out = tmp_path / "upgraded.json"
        save_results(results, out)
        payload = json.loads(out.read_text())
        assert payload["schema"] == RESULT_SCHEMA_VERSION
        reloaded = load_results(out)
        assert reloaded["FedAvg"].trace.equals(results["FedAvg"].trace)

    @pytest.mark.parametrize("version", (0, RESULT_SCHEMA_VERSION + 1))
    def test_unknown_schema_rejected(self, version):
        payload = json.loads(fixture_path(3).read_text())
        inner = payload["results"]["FedAvg"]
        inner["schema"] = version
        with pytest.raises(ValueError, match="unsupported result schema"):
            result_from_dict(inner)


class TestTournamentReportPersistence:
    def report(self, marker="old"):
        return {
            "schema": TOURNAMENT_SCHEMA_VERSION,
            "marker": marker,
            "rankings": {"iid": [["FedL", 0.9]]},
        }

    def test_round_trip(self, tmp_path):
        path = tmp_path / "report.json"
        save_report(self.report(), path, ts={"generated_unix": 1.0})
        loaded = load_report(path)
        assert loaded["marker"] == "old"
        assert loaded["ts"] == {"generated_unix": 1.0}

    def test_wrong_schema_rejected(self, tmp_path):
        path = tmp_path / "report.json"
        save_report({"schema": TOURNAMENT_SCHEMA_VERSION + 1}, path)
        with pytest.raises(ValueError, match="unsupported tournament schema"):
            load_report(path)

    def test_failed_save_preserves_old_report(self, tmp_path):
        path = tmp_path / "report.json"
        save_report(self.report("old"), path)
        before = path.read_bytes()

        class Exploding:
            """Unserializable: json.dumps raises midway."""

        bad = self.report("new")
        bad["rankings"] = Exploding()
        with pytest.raises(TypeError):
            save_report(bad, path)
        assert path.read_bytes() == before
        assert list(tmp_path.glob("*.tmp")) == []

    def test_successful_save_leaves_no_temp_litter(self, tmp_path):
        path = tmp_path / "report.json"
        save_report(self.report(), path)
        save_report(self.report("updated"), path)
        assert load_report(path)["marker"] == "updated"
        assert [p.name for p in tmp_path.iterdir()] == ["report.json"]
