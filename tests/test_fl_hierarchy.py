"""Tests for hierarchical FL: k-means, clustering, two-level latency."""

import numpy as np
import pytest

from repro.config import NetworkConfig, PopulationConfig
from repro.env import build_population
from repro.fl.hierarchy import (
    Clustering,
    cluster_clients,
    hierarchical_epoch_latency,
    hierarchical_round,
    kmeans,
)


class TestKMeans:
    def test_recovers_separated_blobs(self, rng):
        a = rng.normal(0, 0.1, size=(30, 2))
        b = rng.normal(10, 0.1, size=(30, 2))
        pts = np.vstack([a, b])
        centroids, assign = kmeans(pts, 2, rng)
        # The two blobs end in different clusters.
        assert len(set(assign[:30])) == 1
        assert len(set(assign[30:])) == 1
        assert assign[0] != assign[30]

    def test_centroid_is_cluster_mean(self, rng):
        pts = rng.normal(size=(40, 2))
        centroids, assign = kmeans(pts, 3, rng)
        for j in range(3):
            members = pts[assign == j]
            if len(members):
                np.testing.assert_allclose(centroids[j], members.mean(axis=0), atol=1e-6)

    def test_k_equals_n(self, rng):
        pts = rng.normal(size=(5, 2))
        centroids, assign = kmeans(pts, 5, rng)
        assert len(set(assign.tolist())) == 5

    def test_k_one(self, rng):
        pts = rng.normal(size=(20, 2))
        centroids, assign = kmeans(pts, 1, rng)
        np.testing.assert_allclose(centroids[0], pts.mean(axis=0), atol=1e-8)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            kmeans(np.zeros(5), 2, rng)
        with pytest.raises(ValueError):
            kmeans(np.zeros((5, 2)), 6, rng)

    def test_assignments_nearest_centroid(self, rng):
        pts = rng.normal(size=(50, 2)) * 5
        centroids, assign = kmeans(pts, 4, rng)
        d2 = ((pts[:, None, :] - centroids[None]) ** 2).sum(-1)
        np.testing.assert_array_equal(assign, d2.argmin(axis=1))


class TestClustering:
    def test_distances_to_edge_shorter_than_to_center(self, rng):
        pop = build_population(PopulationConfig(num_clients=60), rng)
        clustering = cluster_clients(pop.positions_m, 4, rng)
        to_edge = clustering.distances_to_edge(pop.positions_m)
        to_center = pop.distances_m()
        assert to_edge.mean() < to_center.mean()


class TestHierarchicalLatency:
    def _setup(self, rng, m=40, k=4):
        pop = build_population(PopulationConfig(num_clients=m), rng)
        clustering = cluster_clients(pop.positions_m, k, rng)
        tau_loc = np.full(m, 0.001)
        return pop, clustering, tau_loc

    def test_zero_when_nothing_selected(self, rng):
        pop, clustering, tau_loc = self._setup(rng)
        lat = hierarchical_epoch_latency(
            clustering, pop.positions_m, np.zeros(40, bool), NetworkConfig(), tau_loc
        )
        assert lat == 0.0

    def test_backhaul_floor(self, rng):
        pop, clustering, tau_loc = self._setup(rng)
        sel = np.zeros(40, bool)
        sel[0] = True
        cfg = NetworkConfig()
        lat = hierarchical_epoch_latency(
            clustering, pop.positions_m, sel, cfg, tau_loc,
            backhaul_rate_bps=1e6,
        )
        assert lat >= cfg.upload_bits / 1e6  # at least the backhaul time

    def test_hierarchical_beats_flat_on_average(self, rng):
        """Shorter radio links + spatial band reuse beat the single macro
        cell for the same participant set."""
        from repro.net import ChannelModel, achievable_rate, transmission_latency

        pop, clustering, tau_loc = self._setup(rng, m=60, k=5)
        cfg = NetworkConfig()
        sel = np.zeros(60, bool)
        sel[rng.choice(60, size=20, replace=False)] = True
        # Flat: all 20 share the macro band; mean channel (no shadowing).
        chan = ChannelModel(pop.distances_m(), cfg, rng)
        snr = chan.mean_state().snr_per_hz()
        rates = np.asarray(achievable_rate(cfg.bandwidth_hz / 20, snr))
        flat = float(
            np.max(tau_loc[sel] + np.asarray(
                transmission_latency(cfg.upload_bits, rates))[sel])
        )
        hier = hierarchical_epoch_latency(
            clustering, pop.positions_m, sel, cfg, tau_loc
        )
        assert hier < flat

    def test_validation(self, rng):
        pop, clustering, tau_loc = self._setup(rng)
        with pytest.raises(ValueError):
            hierarchical_epoch_latency(
                clustering, pop.positions_m, np.ones(40, bool), NetworkConfig(),
                tau_loc, backhaul_rate_bps=0.0,
            )


class TestHierarchicalAggregation:
    def test_balanced_clusters_equal_flat_mean(self, rng):
        clustering = Clustering(
            centroids=np.zeros((2, 2)),
            assignments=np.array([0, 0, 1, 1]),
        )
        updates = [rng.normal(size=5) for _ in range(4)]
        hier = hierarchical_round(updates, [0, 1, 2, 3], clustering)
        flat = np.mean(np.stack(updates), axis=0)
        np.testing.assert_allclose(hier, flat)

    def test_unbalanced_weighting(self, rng):
        clustering = Clustering(
            centroids=np.zeros((2, 2)),
            assignments=np.array([0, 0, 0, 1]),
        )
        updates = [np.ones(3), np.ones(3), np.ones(3), 5 * np.ones(3)]
        hier = hierarchical_round(updates, [0, 1, 2, 3], clustering)
        # Count-weighted cluster means = flat mean: (3·1 + 1·5)/4 = 2.
        np.testing.assert_allclose(hier, 2.0)

    def test_validation(self, rng):
        clustering = Clustering(centroids=np.zeros((1, 2)), assignments=np.zeros(2, int))
        with pytest.raises(ValueError):
            hierarchical_round([], [], clustering)
        with pytest.raises(ValueError):
            hierarchical_round([np.ones(2)], [0, 1], clustering)
