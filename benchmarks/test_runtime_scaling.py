"""Theory bench — Theorem 4: FedL runs in polynomial time O(T_C K²).

Times the per-epoch controller (descent step + rounding + dual ascent) at
growing fleet sizes K and checks the growth is polynomial-moderate: going
K → 4K must not blow the per-epoch cost up by more than ~(4K/K)³ (a slack
envelope over the K² theory bound that tolerates constant factors and
BLAS effects at small sizes).
"""

import time

import numpy as np
import pytest

from repro.core.online_learner import OnlineLearner
from repro.core.problem import EpochInputs
from repro.core.rounding import rdcs_round

SIZES = (10, 20, 40)
EPOCHS = 15


def controller_seconds(m: int, seed: int = 0) -> float:
    rng = np.random.default_rng(seed)
    learner = OnlineLearner(m, beta=0.3, delta=0.3, rho_max=6.0)
    start = time.perf_counter()
    for t in range(EPOCHS):
        inputs = EpochInputs(
            tau=rng.uniform(0.1, 2.0, m),
            costs=rng.uniform(0.5, 3.0, m),
            available=np.ones(m, bool),
            eta_hat=rng.uniform(0.1, 0.8, m),
            loss_gap=0.3,
            loss_sensitivity=np.full(m, -0.05),
            remaining_budget=1e6,
            min_participants=3,
        )
        phi = learner.descent_step(inputs)
        rdcs_round(np.clip(phi.x, 0, 1), rng)
        learner.dual_ascent(np.zeros(m + 1))
    return (time.perf_counter() - start) / EPOCHS


@pytest.mark.benchmark(group="theory")
def test_runtime_polynomial_in_fleet_size(benchmark, emit):
    times = benchmark.pedantic(
        lambda: {m: controller_seconds(m) for m in SIZES}, rounds=1, iterations=1
    )
    lines = ["[thm-runtime] per-epoch controller cost"]
    for m, s in times.items():
        lines.append(f"  K={m:>3}: {s * 1e3:8.2f} ms/epoch")
    ratio = times[SIZES[-1]] / max(times[SIZES[0]], 1e-9)
    k_ratio = SIZES[-1] / SIZES[0]
    lines.append(
        f"  K x{k_ratio:.0f} → time x{ratio:.1f} "
        f"(K² envelope: x{k_ratio**2:.0f})"
    )
    emit("\n".join(lines))
    # Polynomial envelope: slack cubic bound plus an additive floor for
    # fixed per-epoch overheads at tiny sizes.
    assert times[SIZES[-1]] <= (k_ratio**3) * times[SIZES[0]] + 0.05
