"""Figure 4 — Accuracy vs. federated round, Fashion-MNIST.

Paper shape: per *round*, FedCS starts strongest (it aggregates the most
clients per round); Pow-d is weakest; FedL closes the gap and matches or
surpasses FedCS over the horizon.
"""

import numpy as np
import pytest

from benchmarks.conftest import cached_suite
from repro.experiments.figures import accuracy_vs_round
from repro.experiments.reporting import format_series


@pytest.mark.benchmark(group="fig4")
@pytest.mark.parametrize("iid", [True, False], ids=["iid", "non_iid"])
def test_fig4_fmnist_accuracy_vs_round(benchmark, emit, iid):
    traces = benchmark.pedantic(
        lambda: cached_suite("fmnist", iid), rounds=1, iterations=1
    )
    emit(
        format_series(
            accuracy_vs_round(traces),
            x_label="round",
            y_label="accuracy",
            title=f"[fig4] FMNIST accuracy vs round ({'IID' if iid else 'Non-IID'})",
        )
    )
    # FedCS's per-round advantage early: over the rounds FedCS actually
    # ran, its accuracy at round r is competitive (within tolerance) with
    # FedAvg's at the same round.
    fedcs = traces["FedCS"]
    fedavg = traces["FedAvg"]
    r = min(len(fedcs), len(fedavg)) - 1
    assert fedcs.accuracy[r] >= fedavg.accuracy[r] - 0.10
    # FedL per-round is at least FedAvg-grade at the common horizon.
    fedl = traces["FedL"]
    r2 = min(len(fedl), len(fedavg)) - 1
    assert fedl.accuracy[r2] >= fedavg.accuracy[r2] - 0.05
