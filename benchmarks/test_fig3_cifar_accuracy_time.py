"""Figure 3 — Accuracy vs. training time, CIFAR-10 (IID & Non-IID).

Same axes as Fig. 2 on the harder dataset; the paper's orderings persist
with lower absolute accuracies and slower convergence.
"""

import pytest

from benchmarks.conftest import cached_suite
from repro.experiments.figures import accuracy_vs_time
from repro.experiments.reporting import format_series


@pytest.mark.benchmark(group="fig3")
@pytest.mark.parametrize("iid", [True, False], ids=["iid", "non_iid"])
def test_fig3_cifar_accuracy_vs_time(benchmark, emit, iid):
    traces = benchmark.pedantic(
        lambda: cached_suite("cifar10", iid), rounds=1, iterations=1
    )
    emit(
        format_series(
            accuracy_vs_time(traces),
            x_label="seconds",
            y_label="accuracy",
            title=f"[fig3] CIFAR-10 accuracy vs time ({'IID' if iid else 'Non-IID'})",
        )
    )
    fedl = traces["FedL"]
    for name, tr in traces.items():
        assert tr.best_accuracy() > 0.2, f"{name} failed to learn"
    best_baseline = max(
        tr.final_accuracy for n, tr in traces.items() if n != "FedL"
    )
    assert fedl.final_accuracy >= best_baseline - 0.05
    assert len(traces["FedCS"]) < len(fedl)
