"""Ablation — differential privacy on uploads ([29] mitigation).

Sweeps the Gaussian-mechanism noise multiplier and reports the
privacy/utility frontier: (ε at δ=1e-5, final accuracy).  More noise →
smaller ε (stronger privacy) → lower accuracy.
"""

import dataclasses

import pytest

from repro.experiments.runner import Simulation, run_experiment
from repro.experiments.scenarios import experiment_config, make_policy
from repro.rng import RngFactory

NOISE = (None, 0.002, 0.02)


@pytest.mark.benchmark(group="ablation")
def test_ablation_privacy_utility_frontier(benchmark, emit):
    def run():
        out = {}
        for sigma in NOISE:
            cfg = experiment_config(
                budget=800.0, num_clients=16, max_epochs=35, seed=31
            )
            cfg = cfg.replace(
                training=dataclasses.replace(
                    cfg.training,
                    dp_noise_multiplier=sigma,
                    dp_clip_norm=1.0,
                )
            )
            sim = Simulation(cfg)
            pol = make_policy("FedAvg", cfg, RngFactory(31).get(f"p.{sigma}"))
            res = run_experiment(pol, cfg, simulation=sim)
            eps = (
                sim.dp_accountant.epsilon(1e-5)
                if sigma is not None
                else float("inf")
            )
            out[sigma] = (res.trace.final_accuracy, eps,
                          sim.dp_accountant.releases)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["[ablation-privacy] sigma -> final acc / eps(1e-5) / releases"]
    for sigma, (acc, eps, rel) in results.items():
        label = "off " if sigma is None else f"{sigma:4.2f}"
        lines.append(f"  sigma={label}: acc={acc:.3f}  eps={eps:10.1f}  n={rel}")
    emit("\n".join(lines))
    accs = {s: v[0] for s, v in results.items()}
    # Mild noise costs little; 10x the noise costs real accuracy (the
    # frontier is monotone).  At simulator scale the resulting eps values
    # are far from practical DP deployments (few clients, many rounds) —
    # the deliverable here is the working clip/noise/accounting machinery.
    assert accs[0.002] >= accs[None] - 0.2
    assert accs[0.02] <= accs[0.002] + 0.05
    # Privacy accounting is live under DP, and more noise => smaller eps.
    assert results[0.02][2] > 0
    assert results[0.02][1] < results[0.002][1]