"""Ablation — communication compression (CMFL-family, related work [28]).

Runs the same FedL scenario with uncompressed, top-k, quantized, and
CMFL-filtered uploads and compares accuracy and simulated time: the
compressed runs should cut the communication component of the latency
without destroying convergence.
"""

import dataclasses

import pytest

from repro.experiments.runner import run_experiment
from repro.experiments.scenarios import experiment_config, make_policy
from repro.rng import RngFactory

SCHEMES = ("none", "topk", "quantize", "cmfl")


@pytest.mark.benchmark(group="ablation")
def test_ablation_compression(benchmark, emit):
    def run():
        out = {}
        for scheme in SCHEMES:
            cfg = experiment_config(
                budget=800.0, num_clients=20, max_epochs=35, seed=23
            )
            cfg = cfg.replace(
                training=dataclasses.replace(
                    cfg.training, compression=scheme, topk_fraction=0.05
                )
            )
            pol = make_policy("FedL", cfg, RngFactory(23).get(f"p.{scheme}"))
            out[scheme] = run_experiment(pol, cfg).trace
        return out

    traces = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "[ablation-compression] scheme -> final acc / total sim time\n"
        + "\n".join(
            f"  {s:9s}: acc={tr.final_accuracy:.3f}  T={tr.times[-1]:6.2f}s"
            f"  ep={len(tr)}"
            for s, tr in traces.items()
        )
    )
    for scheme, tr in traces.items():
        assert tr.final_accuracy > 0.3, scheme
    # Matching epoch horizons, compressed uploads are never slower in
    # simulated time per epoch on average.
    horizon = min(len(tr) for tr in traces.values())
    t_none = traces["none"].times[horizon - 1]
    t_topk = traces["topk"].times[horizon - 1]
    assert t_topk <= t_none * 1.05
