"""Ablation — solver for the per-epoch descent step (8): projected
gradient vs the interior-point filter line-search method (paper's [26]).

Checks the two produce near-identical decisions and compares their cost.
"""

import time

import numpy as np
import pytest

from repro.core.online_learner import OnlineLearner
from repro.core.problem import EpochInputs

M = 20
STEPS = 10


def make_inputs(rng: np.random.Generator) -> EpochInputs:
    return EpochInputs(
        tau=rng.uniform(0.1, 2.0, M),
        costs=rng.uniform(0.5, 3.0, M),
        available=np.ones(M, bool),
        eta_hat=rng.uniform(0.1, 0.8, M),
        loss_gap=0.3,
        loss_sensitivity=np.full(M, -0.05),
        remaining_budget=200.0,
        min_participants=4,
    )


@pytest.mark.benchmark(group="ablation")
def test_ablation_solver_agreement_and_cost(benchmark, emit):
    def run():
        """Drive a reference PG learner; at every step, solve the SAME
        subproblem (same Φ, μ) with the interior-point learner and record
        the one-step deviation — compounding-free agreement."""
        rng = np.random.default_rng(9)
        streams = [make_inputs(rng) for _ in range(STEPS)]
        pg = OnlineLearner(M, beta=0.3, delta=0.3, solver="projected_gradient")
        ip = OnlineLearner(M, beta=0.3, delta=0.3, solver="interior_point")
        devs = []
        t_pg = t_ip = 0.0
        for inputs in streams:
            ip.reset_phi(pg.phi)
            ip.state.mu = pg.mu
            t0 = time.perf_counter()
            phi_ip = ip.descent_step(inputs)
            t_ip += time.perf_counter() - t0
            t0 = time.perf_counter()
            phi_pg = pg.descent_step(inputs)
            t_pg += time.perf_counter() - t0
            devs.append(phi_pg.distance(phi_ip))
            pg.dual_ascent(rng.uniform(-0.2, 0.2, M + 1))
        return np.asarray(devs), t_pg, t_ip

    devs, t_pg, t_ip = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "[ablation-solver]\n"
        f"  one-step decision deviation PG vs IP: max {devs.max():.4f},"
        f" mean {devs.mean():.4f}\n"
        f"  cost: projected-gradient {t_pg * 1e3 / STEPS:.1f} ms/step,"
        f" interior-point {t_ip * 1e3 / STEPS:.1f} ms/step"
    )
    # Identical subproblems → near-identical decisions.
    assert devs.max() < 0.1
