"""Theory bench — online FedL vs the hindsight (offline P1) optimum.

Runs FedL online, logging every epoch's realized latencies, prices, and
availability, then solves the budget-coupled offline problem on the SAME
trajectory with the DP of :mod:`repro.core.offline`.  The ratio of FedL's
realized selection latency to the hindsight optimum quantifies the price
of 0-lookahead + learning — the quantity the paper's regret analysis
bounds (here against the stronger, budget-coupled benchmark).
"""

import numpy as np
import pytest

from repro.core.offline import offline_optimum
from repro.experiments.runner import run_experiment
from repro.experiments.scenarios import experiment_config, make_policy
from repro.rng import RngFactory


class RecordingPolicy:
    """Wraps a policy, logging the realized environment per epoch."""

    def __init__(self, inner):
        self.inner = inner
        self.name = inner.name
        self.tau_log = []
        self.cost_log = []
        self.avail_log = []
        self.selected_log = []

    def select(self, ctx):
        self.cost_log.append(ctx.costs.copy())
        self.avail_log.append(ctx.available.copy())
        return self.inner.select(ctx)

    def update(self, feedback):
        self.tau_log.append(feedback.tau_realized.copy())
        self.selected_log.append(feedback.selected.copy())
        self.inner.update(feedback)


@pytest.mark.benchmark(group="theory")
def test_online_vs_offline_gap(benchmark, emit):
    def run():
        cfg = experiment_config(
            budget=800.0, num_clients=20, max_epochs=40, seed=17
        )
        pol = RecordingPolicy(
            make_policy("FedL", cfg, RngFactory(17).get("p"))
        )
        run_experiment(pol, cfg)
        # Per-iteration online selection latency over the logged epochs.
        online = sum(
            float(tau[sel].max())
            for tau, sel in zip(pol.tau_log, pol.selected_log)
            if sel.any()
        )
        offline, masks = offline_optimum(
            pol.tau_log,
            pol.cost_log,
            [a[: len(pol.tau_log)] for a in pol.avail_log[: len(pol.tau_log)]],
            budget=cfg.budget,
            n=cfg.min_participants,
            grid_points=400,
        )
        epochs_run = sum(1 for m in masks if m.any())
        return online, offline, len(pol.tau_log), epochs_run

    online, offline, online_epochs, offline_epochs = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    emit(
        "[thm-offline-gap]\n"
        f"  online FedL selection latency : {online:.3f} s over {online_epochs} epochs\n"
        f"  hindsight optimum             : {offline:.3f} s over {offline_epochs} epochs\n"
        f"  online/offline ratio          : {online / max(offline, 1e-9):.2f}x"
    )
    # The hindsight optimum can run at least as many epochs...
    assert offline_epochs >= online_epochs
    # ...and online stays within a moderate constant of it (sublinear
    # regret means this ratio shrinks with horizon; at 40 epochs a
    # single-digit factor is the expected regime).
    assert online <= 25.0 * max(offline, 1e-9)