"""Ablation — 0-lookahead vs 1-lookahead (paper Sec. 2's distinction).

The paper criticizes prior work for assuming 1-lookahead (knowing the
current epoch's inputs before deciding).  The oracle baseline IS the
1-lookahead per-slot optimum; comparing FedL against it quantifies the
price of honesty, and per-epoch latencies quantify how much of the oracle
gap FedL closes relative to blind random selection.
"""

import numpy as np
import pytest

from repro.experiments.runner import run_experiment
from repro.experiments.scenarios import experiment_config, make_policy
from repro.rng import RngFactory


@pytest.mark.benchmark(group="ablation")
def test_ablation_lookahead_price_of_honesty(benchmark, emit):
    def run():
        traces = {}
        for name in ("FedL", "FedAvg", "Oracle"):
            cfg = experiment_config(
                budget=800.0, num_clients=20, max_epochs=40, seed=6
            )
            pol = make_policy(name, cfg, RngFactory(6).get(f"p.{name}"))
            traces[name] = run_experiment(pol, cfg).trace
        return traces

    traces = benchmark.pedantic(run, rounds=1, iterations=1)
    # Mean per-iteration latency of the selected sets (iteration-count
    # normalized so FedL's adaptive l_t does not skew the comparison).
    per_iter = {
        n: float(
            (tr.column("epoch_latency") / tr.column("iterations")).mean()
        )
        for n, tr in traces.items()
    }
    emit(
        "[ablation-lookahead] mean per-iteration epoch latency (s)\n"
        + "\n".join(f"  {n:7s}: {v:.3f}" for n, v in per_iter.items())
    )
    # The 1-lookahead oracle is the floor; FedL should land between the
    # oracle and blind random selection, closing part of the gap.
    assert per_iter["Oracle"] <= per_iter["FedAvg"] * 1.05
    assert per_iter["FedL"] <= per_iter["FedAvg"] * 1.10
