"""Extension bench — fairness-aware FedL (the paper's future work).

Compares plain FedL against Fair-FedL (virtual-queue participation
fairness) on participation spread (Jain's index) and accuracy: fairness
should rise substantially at a modest accuracy/latency cost.
"""

import numpy as np
import pytest

from repro.core.fairness import ParticipationTracker, jain_index
from repro.experiments.runner import run_experiment
from repro.experiments.scenarios import experiment_config, make_policy
from repro.rng import RngFactory


@pytest.mark.benchmark(group="extension")
def test_extension_fairness_tradeoff(benchmark, emit):
    def run():
        out = {}
        for name in ("FedL", "Fair-FedL"):
            cfg = experiment_config(
                budget=1000.0, num_clients=20, max_epochs=50, seed=13
            )
            pol = make_policy(name, cfg, RngFactory(13).get(f"p.{name}"))
            res = run_experiment(pol, cfg)
            if name == "Fair-FedL":
                fairness = pol.tracker.fairness()
            else:
                # Rebuild participation rates from the trace is not possible
                # (masks not stored); track via a fresh run? Instead use the
                # recorded per-epoch selections count distribution proxy:
                fairness = None
            out[name] = (res.trace, pol)
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    # Participation fairness: reconstruct from the policies' own state.
    fair_tr, fair_pol = out["Fair-FedL"]
    plain_tr, plain_pol = out["FedL"]
    # Plain FedL has no tracker; approximate its participation spread from
    # the learner's terminal fractional allocation (what it converged to).
    plain_fair = jain_index(np.clip(plain_pol.phi.x, 0.0, 1.0))
    fair_fair = fair_pol.tracker.fairness()
    emit(
        "[extension-fairness]\n"
        f"  Fair-FedL participation Jain index: {fair_fair:.3f}\n"
        f"  FedL terminal-allocation Jain index: {plain_fair:.3f}\n"
        f"  final accuracy: FedL {plain_tr.final_accuracy:.3f},"
        f" Fair-FedL {fair_tr.final_accuracy:.3f}\n"
        f"  total time: FedL {plain_tr.times[-1]:.1f}s,"
        f" Fair-FedL {fair_tr.times[-1]:.1f}s"
    )
    # Fair-FedL spreads participation widely...
    assert fair_fair > 0.6
    assert fair_fair > plain_fair
    # ...while still learning.
    assert fair_tr.final_accuracy > 0.3
    assert fair_tr.final_accuracy > plain_tr.final_accuracy - 0.15
