"""Ablation — the Corollary 1 step-size rule β = δ = O(T^{-1/3}).

Sweeps the O(·) constant (``step_scale``) in full FedL runs.  Too small a
step makes the learner adapt too slowly (poor latency learning); too large
destabilizes the dual dynamics.  The default sits in the productive band.
"""

import dataclasses

import pytest

from repro.config import FedLConfig
from repro.experiments.runner import run_experiment
from repro.experiments.scenarios import experiment_config, make_policy
from repro.rng import RngFactory

SCALES = (0.3, 3.0, 30.0)


@pytest.mark.benchmark(group="ablation")
def test_ablation_step_size_scale(benchmark, emit):
    def run():
        out = {}
        for scale in SCALES:
            cfg = experiment_config(
                budget=800.0, num_clients=20, max_epochs=40, seed=8
            )
            cfg = cfg.replace(
                fedl=dataclasses.replace(cfg.fedl, step_scale=scale)
            )
            pol = make_policy("FedL", cfg, RngFactory(8).get(f"p.{scale}"))
            out[scale] = run_experiment(pol, cfg).trace
        return out

    traces = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = {
        scale: (
            tr.final_accuracy,
            float(tr.times[-1]),
            float(
                (tr.column("epoch_latency") / tr.column("iterations"))[-8:].mean()
            ),
        )
        for scale, tr in traces.items()
    }
    emit(
        "[ablation-step-size] scale -> (final acc, total time s, late per-iter lat s)\n"
        + "\n".join(
            f"  {s:>5}: acc={a:.3f}  T={t:7.1f}  lat={l:.3f}"
            for s, (a, t, l) in rows.items()
        )
    )
    # Every scale still learns (the theory guarantees hold for any fixed
    # positive steps) and lands in the same accuracy band — the rule is
    # robust to its constant, which is the practical content of
    # Corollary 1's O(·) freedom.  (Late-run latency magnitudes are
    # reported above but are seed-noisy at the ~10 ms level, so they are
    # not asserted.)
    best = max(tr.final_accuracy for tr in traces.values())
    for scale, tr in traces.items():
        assert tr.final_accuracy > 0.3, scale
        assert tr.final_accuracy >= best - 0.25, scale
