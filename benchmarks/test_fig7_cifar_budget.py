"""Figure 7 — Budget impact, CIFAR-10: final loss vs budget C."""

import pytest

from benchmarks.conftest import BENCH_CLIENTS, BENCH_EPOCHS, SWEEP_WORKERS
from repro.experiments.figures import budget_sweep
from repro.experiments.reporting import format_series

BUDGETS = (300.0, 800.0, 2000.0)


@pytest.mark.benchmark(group="fig7")
@pytest.mark.parametrize("iid", [True, False], ids=["iid", "non_iid"])
def test_fig7_cifar_budget_impact(benchmark, emit, iid):
    series = benchmark.pedantic(
        lambda: budget_sweep(
            "cifar10",
            iid=iid,
            budgets=BUDGETS,
            num_clients=BENCH_CLIENTS,
            max_epochs=BENCH_EPOCHS,
            workers=SWEEP_WORKERS,
        ),
        rounds=1,
        iterations=1,
    )
    emit(
        format_series(
            series,
            x_label="budget",
            y_label="final loss",
            title=f"[fig7] CIFAR-10 final loss vs budget ({'IID' if iid else 'Non-IID'})",
        )
    )
    # Non-IID runs are noisier (the paper notes the fluctuation), so
    # the shape assertions carry a wider band there.
    tol = 0.10 if iid else 0.25
    fedl = dict(series["FedL"])
    for name in ("FedAvg", "FedCS", "Pow-d"):
        other = dict(series[name])
        assert fedl[BUDGETS[0]] <= other[BUDGETS[0]] + tol, name
    fedl_drop = fedl[BUDGETS[0]] - fedl[BUDGETS[-1]]
    max_base_drop = max(
        dict(series[n])[BUDGETS[0]] - dict(series[n])[BUDGETS[-1]]
        for n in ("FedAvg", "FedCS", "Pow-d")
    )
    assert fedl_drop <= max_base_drop + 2 * tol
