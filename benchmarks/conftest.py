"""Shared infrastructure for the benchmark harness.

Figures 2 & 4 (and 3 & 5) are different views of the same runs, so the
policy-suite results are cached per (dataset, iid) for the session; the
first bench that needs a suite pays for it.

Benchmark scale: the paper runs M = 100 clients with real CNN training for
thousands of seconds of GPU time; the benches run the same pipeline at
M = 20 / 60 epochs so the full harness finishes in minutes.  The *shape*
comparisons (who wins, crossovers) are what is asserted; see
EXPERIMENTS.md for the measured-vs-paper discussion.
"""

from __future__ import annotations

import os
from typing import Dict

import pytest

from repro.experiments.figures import run_policy_suite
from repro.experiments.metrics import Trace

BENCH_CLIENTS = 20
BENCH_EPOCHS = 60
BENCH_BUDGET = 1200.0

# Worker processes for the sweep-engine benches (multi-seed bands, budget
# sweeps).  Results are bit-identical at any worker count; override with
# REPRO_SWEEP_WORKERS to pin serial (1) or oversubscribe.
SWEEP_WORKERS = int(os.environ.get("REPRO_SWEEP_WORKERS", str(os.cpu_count() or 1)))

_suite_cache: Dict[tuple, Dict[str, Trace]] = {}


def cached_suite(dataset: str, iid: bool, budget: float = BENCH_BUDGET) -> Dict[str, Trace]:
    """Run (or reuse) the four-policy suite for a scenario."""
    key = (dataset, iid, budget)
    if key not in _suite_cache:
        _suite_cache[key] = run_policy_suite(
            dataset,
            iid,
            budget=budget,
            num_clients=BENCH_CLIENTS,
            max_epochs=BENCH_EPOCHS,
            workers=SWEEP_WORKERS,
        )
    return _suite_cache[key]


@pytest.fixture
def emit(capsys):
    """Print straight to the terminal, bypassing pytest capture."""

    def _emit(text: str) -> None:
        with capsys.disabled():
            print()
            print(text)

    return _emit
