"""Extension bench — UCB bandit selection vs FedL.

The paper cites bandit/RL selection strategies ([30] and others) as the
class "lacking theoretical guarantees" on convergence.  This bench pits a
UCB1 latency-bandit against FedL: UCB also learns fast clients, but its
exploration is *forced* (it must select an arm to observe it) while FedL
exploits the passively observable latencies — so FedL should match or
beat UCB's latency while also controlling iterations.
"""

import pytest

from repro.experiments.runner import run_experiment
from repro.experiments.scenarios import experiment_config, make_policy
from repro.rng import RngFactory


@pytest.mark.benchmark(group="extension")
def test_extension_ucb_vs_fedl(benchmark, emit):
    def run():
        out = {}
        for name in ("FedL", "UCB", "FedAvg"):
            cfg = experiment_config(
                budget=1000.0, num_clients=20, max_epochs=50, seed=14
            )
            pol = make_policy(name, cfg, RngFactory(14).get(f"p.{name}"))
            out[name] = run_experiment(pol, cfg).trace
        return out

    traces = benchmark.pedantic(run, rounds=1, iterations=1)
    per_iter = {
        n: float((tr.column("epoch_latency") / tr.column("iterations"))[-15:].mean())
        for n, tr in traces.items()
    }
    emit(
        "[extension-ucb] late-run per-iteration latency (s) & final accuracy\n"
        + "\n".join(
            f"  {n:7s}: lat={per_iter[n]:.3f}  acc={traces[n].final_accuracy:.3f}"
            for n in traces
        )
    )
    # Both learning selectors end up faster than blind random selection.
    assert per_iter["UCB"] <= per_iter["FedAvg"] * 1.05
    assert per_iter["FedL"] <= per_iter["FedAvg"] * 1.05
    # Everyone learns.
    for n, tr in traces.items():
        assert tr.final_accuracy > 0.3, n
