"""Headline claims (paper §1 / §6.2).

* "FedL saves at least 38% completion time when reaching the same
  accuracy" — measured as time-to-target vs the best baseline.
* "FedL can improve the accuracy by 2% to 15% on average" at equal
  training time.

We assert directional versions at bench scale (FedL is no slower to the
target and no less accurate at equal time); the measured magnitudes are
recorded in EXPERIMENTS.md.
"""

import numpy as np
import pytest

from benchmarks.conftest import cached_suite
from repro.experiments.reporting import format_table
from repro.experiments.tables import accuracy_at_time, headline_claims, time_to_accuracy


@pytest.mark.benchmark(group="headline")
def test_headline_completion_time_and_accuracy(benchmark, emit):
    traces = benchmark.pedantic(
        lambda: cached_suite("fmnist", True), rounds=1, iterations=1
    )
    # Target: a band every policy can plausibly reach at bench scale.
    target = 0.65
    ttimes = time_to_accuracy(traces, target)
    claims = headline_claims(traces, target=target)

    rows = {
        name: {
            f"time to {target:.0%} (s)": t,
            "final acc": round(tr.final_accuracy, 3),
            "epochs": len(tr),
        }
        for (name, t), tr in zip(ttimes.items(), traces.values())
    }
    emit(format_table(rows, title="[headline] completion time & accuracy"))
    emit(
        f"  FedL completion-time saving vs best baseline:"
        f" {claims['time_saving_pct']:.0f}%"
        f" (paper claims >= 38%)\n"
        f"  accuracy gain at equal time: {claims['accuracy_gain']:+.3f}"
        f" (paper claims +0.02 to +0.15)"
    )

    # FedL reaches the target.
    assert ttimes["FedL"] is not None
    # Directional claim: FedL's completion time does not exceed the best
    # baseline that reached the target (when any did).
    finite_baselines = [
        t for n, t in ttimes.items() if n != "FedL" and t is not None
    ]
    if finite_baselines:
        assert ttimes["FedL"] <= min(finite_baselines) * 1.25
    # Accuracy-at-equal-time: FedL is not behind the baseline pack.
    assert claims["accuracy_gain"] >= -0.05
