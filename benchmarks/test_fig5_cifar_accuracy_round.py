"""Figure 5 — Accuracy vs. federated round, CIFAR-10."""

import pytest

from benchmarks.conftest import cached_suite
from repro.experiments.figures import accuracy_vs_round
from repro.experiments.reporting import format_series


@pytest.mark.benchmark(group="fig5")
@pytest.mark.parametrize("iid", [True, False], ids=["iid", "non_iid"])
def test_fig5_cifar_accuracy_vs_round(benchmark, emit, iid):
    traces = benchmark.pedantic(
        lambda: cached_suite("cifar10", iid), rounds=1, iterations=1
    )
    emit(
        format_series(
            accuracy_vs_round(traces),
            x_label="round",
            y_label="accuracy",
            title=f"[fig5] CIFAR-10 accuracy vs round ({'IID' if iid else 'Non-IID'})",
        )
    )
    fedcs = traces["FedCS"]
    fedavg = traces["FedAvg"]
    r = min(len(fedcs), len(fedavg)) - 1
    assert fedcs.accuracy[r] >= fedavg.accuracy[r] - 0.10
    fedl = traces["FedL"]
    r2 = min(len(fedl), len(fedavg)) - 1
    assert fedl.accuracy[r2] >= fedavg.accuracy[r2] - 0.05
