"""Theory bench — measuring the assumptions on the actual workload.

The regret guarantees assume (Sec. 3.1 & Assumption 1):

* local losses are L-smooth and γ-strongly convex (γ > 0 holds provably
  for the logreg model with L2; for the MLP, γ is measured and may be
  ~0/negative — which is exactly the gap between the theory's setting and
  deep models that the paper inherits from the FL literature),
* bounded per-slot gradients G_f, G_h and feasible-set radius R.

This bench reports the measured constants and checks internal consistency.
"""

import numpy as np
import pytest

from repro.core.problem import EpochInputs, FedLProblem
from repro.datasets.fmnist import synthetic_fmnist
from repro.fl.analysis import assumption1_constants, estimate_curvature
from repro.nn.models import build_model
from repro.rng import RngFactory


@pytest.mark.benchmark(group="theory")
def test_measured_assumption_constants(benchmark, emit):
    def run():
        root = RngFactory(3)
        gen = synthetic_fmnist(root.get("data"), downscale=2)
        data = gen.sample(200, rng=root.get("sample"))
        reg = 0.05
        logreg = build_model("logreg", gen.num_features, 10, root.get("m1"), l2_reg=reg)
        mlp = build_model("mlp", gen.num_features, 10, root.get("m2"),
                          hidden=(32,), l2_reg=reg)
        curvature = {
            "logreg": estimate_curvature(
                logreg, data, logreg.get_params(), root.get("c1")
            ),
            "mlp": estimate_curvature(mlp, data, mlp.get_params(), root.get("c2")),
        }
        m = 20
        rng = root.get("prob")
        prob = FedLProblem(
            EpochInputs(
                tau=rng.uniform(0.05, 2.0, m),
                costs=rng.uniform(0.5, 3.0, m),
                available=np.ones(m, bool),
                eta_hat=rng.uniform(0.1, 0.8, m),
                loss_gap=0.5,
                loss_sensitivity=np.full(m, -0.05),
                remaining_budget=100.0,
                min_participants=5,
            ),
            rho_max=8.0,
        )
        consts = assumption1_constants(prob, root.get("a1"))
        return curvature, consts, reg

    curvature, (g_f, g_h, radius), reg = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    emit(
        "[thm-assumptions]\n"
        f"  logreg: L={curvature['logreg'].smoothness:.3f}"
        f"  gamma={curvature['logreg'].strong_convexity:.4f}"
        f"  (provable floor gamma >= l2_reg = {reg})\n"
        f"  mlp   : L={curvature['mlp'].smoothness:.3f}"
        f"  gamma={curvature['mlp'].strong_convexity:.4f}"
        f"  (deep models need not be strongly convex)\n"
        f"  Assumption 1 on a 20-client epoch: G_f={g_f:.2f}"
        f"  G_h={g_h:.2f}  R={radius:.2f}"
    )
    # Provable relations hold in the measurements.
    assert curvature["logreg"].strong_convexity >= reg - 1e-6
    assert curvature["logreg"].smoothness >= curvature["logreg"].strong_convexity
    assert g_f > 0 and g_h > 0 and radius > 0
