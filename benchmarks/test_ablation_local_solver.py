"""Ablation — local solver family: DANE (paper) vs FedProx vs
momentum-accelerated DANE.

The paper's framework trains with the DANE surrogate (following FEDL [7]);
its related work covers FedProx [15] and Momentum FL [17].  This bench
swaps the local solver under the same FedL controller and compares
convergence — the controller is solver-agnostic by design.
"""

import dataclasses

import pytest

from repro.experiments.runner import run_experiment
from repro.experiments.scenarios import experiment_config, make_policy
from repro.rng import RngFactory

VARIANTS = {
    "dane": dict(local_solver="dane", momentum=0.0),
    "fedprox": dict(local_solver="fedprox", momentum=0.0),
    "dane+mom": dict(local_solver="dane", momentum=0.6),
}


@pytest.mark.benchmark(group="ablation")
def test_ablation_local_solver(benchmark, emit):
    def run():
        out = {}
        for name, fields in VARIANTS.items():
            cfg = experiment_config(
                budget=800.0, num_clients=20, max_epochs=40, seed=15
            )
            cfg = cfg.replace(
                training=dataclasses.replace(cfg.training, **fields)
            )
            pol = make_policy("FedL", cfg, RngFactory(15).get(f"p.{name}"))
            out[name] = run_experiment(pol, cfg).trace
        return out

    traces = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "[ablation-local-solver] final accuracy / epochs / sim time\n"
        + "\n".join(
            f"  {n:9s}: acc={tr.final_accuracy:.3f}  ep={len(tr):3d}"
            f"  T={tr.times[-1]:6.1f}s"
            for n, tr in traces.items()
        )
    )
    # All variants learn under the same controller.
    for name, tr in traces.items():
        assert tr.final_accuracy > 0.3, name
    # The gradient-corrected solvers should not lose badly to FedProx
    # (DANE's correction is the point of the FEDL-style training).
    assert (
        traces["dane"].final_accuracy >= traces["fedprox"].final_accuracy - 0.10
    )
