"""Performance benchmarks for the NumPy NN substrate.

These use pytest-benchmark's repeated timing (unlike the figure benches,
which are one-shot experiment regenerations): loss+gradient throughput of
the three model families at experiment batch sizes.  Regressions here
translate directly into slower experiment sweeps.
"""

import numpy as np
import pytest

from repro.nn.models import build_model
from repro.rng import RngFactory

BATCH = 32
INPUT_DIM = 14 * 14


def _setup(name, **kwargs):
    root = RngFactory(1)
    model = build_model(name, INPUT_DIM, 10, root.get("m"), **kwargs)
    rng = root.get("d")
    x = rng.normal(size=(BATCH, INPUT_DIM))
    y = rng.integers(0, 10, size=BATCH)
    w = model.get_params()
    return model, w, x, y


@pytest.mark.benchmark(group="nn-throughput")
def test_logreg_loss_and_grad(benchmark):
    model, w, x, y = _setup("logreg")
    loss, grad = benchmark(model.loss_and_grad, w, x, y)
    assert np.isfinite(loss)
    assert grad.shape == w.shape


@pytest.mark.benchmark(group="nn-throughput")
def test_mlp_loss_and_grad(benchmark):
    model, w, x, y = _setup("mlp", hidden=(64,))
    loss, grad = benchmark(model.loss_and_grad, w, x, y)
    assert np.isfinite(loss)


@pytest.mark.benchmark(group="nn-throughput")
def test_cnn_loss_and_grad(benchmark):
    model, w, x, y = _setup("cnn", image_shape=(14, 14, 1), cnn_scale=0.5)
    loss, grad = benchmark(model.loss_and_grad, w, x, y)
    assert np.isfinite(loss)


@pytest.mark.benchmark(group="nn-throughput")
def test_mlp_inference(benchmark):
    model, w, x, y = _setup("mlp", hidden=(64,))
    preds = benchmark(model.predict, w, x)
    assert preds.shape == (BATCH,)
