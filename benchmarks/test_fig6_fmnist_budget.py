"""Figure 6 — Budget impact, Fashion-MNIST: final loss vs budget C.

Paper shape: baselines' final loss falls visibly as the budget grows
(bigger C buys more rounds); FedL's curve is flatter and sits at or below
the baselines even at the small-budget end ("FedL can finish FL tasks
with less budget").
"""

import numpy as np
import pytest

from benchmarks.conftest import BENCH_CLIENTS, BENCH_EPOCHS, SWEEP_WORKERS
from repro.experiments.figures import budget_sweep
from repro.experiments.reporting import format_series

BUDGETS = (300.0, 800.0, 2000.0)


@pytest.mark.benchmark(group="fig6")
@pytest.mark.parametrize("iid", [True, False], ids=["iid", "non_iid"])
def test_fig6_fmnist_budget_impact(benchmark, emit, iid):
    series = benchmark.pedantic(
        lambda: budget_sweep(
            "fmnist",
            iid=iid,
            budgets=BUDGETS,
            num_clients=BENCH_CLIENTS,
            max_epochs=BENCH_EPOCHS,
            workers=SWEEP_WORKERS,
        ),
        rounds=1,
        iterations=1,
    )
    emit(
        format_series(
            series,
            x_label="budget",
            y_label="final loss",
            title=f"[fig6] FMNIST final loss vs budget ({'IID' if iid else 'Non-IID'})",
        )
    )
    # Non-IID runs are noisier (the paper notes the fluctuation), so
    # the shape assertions carry a wider band there.
    tol = 0.10 if iid else 0.25
    fedl = dict(series["FedL"])
    # 1. At the smallest budget FedL's loss beats (or matches) every baseline.
    for name in ("FedAvg", "FedCS", "Pow-d"):
        other = dict(series[name])
        assert fedl[BUDGETS[0]] <= other[BUDGETS[0]] + tol, name
    # 2. FedL's curve is comparatively flat: its small-to-large budget loss
    #    drop is no larger than the worst baseline's drop.
    fedl_drop = fedl[BUDGETS[0]] - fedl[BUDGETS[-1]]
    max_base_drop = max(
        dict(series[n])[BUDGETS[0]] - dict(series[n])[BUDGETS[-1]]
        for n in ("FedAvg", "FedCS", "Pow-d")
    )
    assert fedl_drop <= max_base_drop + 2 * tol
