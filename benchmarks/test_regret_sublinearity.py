"""Theory bench — Corollary 1: sublinear dynamic regret and fit.

Drives the online learner over synthetic bounded-variation streams with
Corollary 1's step sizes β = δ = T^{-1/3} and verifies that the
*time-averaged* regret and fit shrink as the horizon grows (the signature
of sublinear growth), and that the measured regret respects the Theorem 2
bound computed from the same trajectory.
"""

import numpy as np
import pytest

from repro.core.bounds import mu_hat_bound, path_length, regret_bound
from repro.core.online_learner import OnlineLearner
from repro.core.problem import EpochInputs, FedLProblem
from repro.core.regret import dynamic_fit, dynamic_regret
from repro.rng import RngFactory

HORIZONS = (20, 40, 80)
M = 8


def make_stream(horizon: int, rng: np.random.Generator):
    base_tau = rng.uniform(0.2, 2.0, M)
    base_eta = rng.uniform(0.2, 0.7, M)
    problems = []
    for t in range(horizon):
        drift = 0.2 * np.sin(2 * np.pi * t / 40.0 + np.arange(M))
        problems.append(
            FedLProblem(
                EpochInputs(
                    tau=np.clip(base_tau + drift, 0.05, None),
                    costs=rng.uniform(0.5, 3.0, M),
                    available=np.ones(M, bool),
                    eta_hat=np.clip(base_eta + 0.1 * drift, 0.0, 0.9),
                    loss_gap=0.3,
                    loss_sensitivity=np.full(M, -0.12),
                    remaining_budget=1e6,
                    min_participants=3,
                ),
                rho_max=6.0,
            )
        )
    return problems


def run_horizon(horizon: int, factory: RngFactory):
    problems = make_stream(horizon, factory.fresh("stream"))
    step = horizon ** (-1.0 / 3.0)
    learner = OnlineLearner(M, beta=step, delta=step, rho_max=6.0)
    decisions = []
    for prob in problems:
        phi = learner.descent_step(prob.inputs)
        decisions.append(phi)
        learner.dual_ascent(prob.h(phi))
    reg, opts = dynamic_regret(problems, decisions)
    fit = dynamic_fit(problems, decisions)
    return reg, fit, opts


@pytest.mark.benchmark(group="theory")
def test_regret_and_fit_sublinear(benchmark, emit):
    factory = RngFactory(5)
    results = benchmark.pedantic(
        lambda: {T: run_horizon(T, factory) for T in HORIZONS},
        rounds=1,
        iterations=1,
    )
    lines = [f"[thm-regret] {'T':>5} {'Reg_d':>9} {'Fit_d':>9} {'Fit/T':>8}"]
    for T, (reg, fit, _) in results.items():
        lines.append(f"             {T:>5} {reg:>9.2f} {fit:>9.2f} {fit / T:>8.3f}")
    emit("\n".join(lines))

    # Time-averaged fit strictly decreases over the horizon sweep.
    avg_fit = [results[T][1] / T for T in HORIZONS]
    assert avg_fit[-1] < avg_fit[0]
    # Regret itself stays below the Theorem 2 bound evaluated on the run.
    T = HORIZONS[-1]
    reg, fit, opts = results[T]
    step = T ** (-1.0 / 3.0)
    g_f, g_h, radius = 10.0, 5.0, np.sqrt(M + 25.0)
    mu_hat = mu_hat_bound(step, step, g_f, g_h, radius, xi=1.0, v_hat_h=0.5)
    bound = regret_bound(
        t_c=T, beta=step, delta=step, g_f=g_f, g_h=g_h, radius=radius,
        mu_hat=mu_hat, v_phi_star=path_length(opts), v_h=0.5 * T,
    )
    assert reg <= bound
