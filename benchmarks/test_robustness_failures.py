"""Robustness bench — client-crash injection sweep.

Sweeps the mid-round failure probability and reports how FedL's
convergence degrades.  The online machinery must stay stable: duals
nonnegative, budget accounting exact, graceful accuracy degradation (no
collapse) — the failure-handling contract of the runner.
"""

import dataclasses

import numpy as np
import pytest

from repro.experiments.runner import run_experiment
from repro.experiments.scenarios import experiment_config, make_policy
from repro.rng import RngFactory

FAILURE_RATES = (0.0, 0.25, 0.5)


@pytest.mark.benchmark(group="robustness")
def test_failure_rate_sweep(benchmark, emit):
    def run():
        out = {}
        for prob in FAILURE_RATES:
            cfg = experiment_config(
                budget=800.0, num_clients=20, max_epochs=40, seed=19
            )
            cfg = cfg.replace(
                population=dataclasses.replace(cfg.population, failure_prob=prob)
            )
            pol = make_policy("FedL", cfg, RngFactory(19).get(f"p.{prob}"))
            res = run_experiment(pol, cfg)
            out[prob] = (res.trace, np.all(pol.mu >= 0))
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["[robustness-failures] crash prob -> final acc / failed rentals"]
    for prob, (tr, duals_ok) in results.items():
        failed = int(tr.column("num_failed").sum())
        lines.append(
            f"  p={prob:4.2f}: acc={tr.final_accuracy:.3f}"
            f"  failures={failed:3d}  epochs={len(tr)}"
        )
    emit("\n".join(lines))
    for prob, (tr, duals_ok) in results.items():
        assert duals_ok, prob
        assert tr.total_spend <= 800.0 + 1e-6
        # Graceful degradation: even at 50% crash rate training progresses.
        assert tr.final_accuracy > 0.25, prob
    # Failure counts increase with the rate.
    f0 = results[0.0][0].column("num_failed").sum()
    f5 = results[0.5][0].column("num_failed").sum()
    assert f0 == 0 and f5 > 0
