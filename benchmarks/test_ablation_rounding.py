"""Ablation — RDCS (Alg. 2) vs independent rounding inside full FedL runs.

The paper motivates dependent rounding by feasibility: independent
rounding "may generate an infeasible solution or lead to an excessive
system latency".  We run FedL end-to-end under both and compare the raw
(pre-repair) feasibility of the rounded selections and the resulting
learning curves.
"""

import dataclasses

import numpy as np
import pytest

from repro.config import FedLConfig
from repro.core.rounding import independent_round, rdcs_round
from repro.experiments.runner import run_experiment
from repro.experiments.scenarios import experiment_config, make_policy
from repro.rng import RngFactory


@pytest.mark.benchmark(group="ablation")
def test_ablation_rounding_feasibility_and_accuracy(benchmark, emit):
    def run():
        results = {}
        for rounding in ("rdcs", "independent"):
            cfg = experiment_config(
                budget=800.0, num_clients=20, max_epochs=40, seed=4
            )
            cfg = cfg.replace(fedl=dataclasses.replace(cfg.fedl, rounding=rounding))
            pol = make_policy("FedL", cfg, RngFactory(4).get(f"p.{rounding}"))
            results[rounding] = run_experiment(pol, cfg).trace
        return results

    traces = benchmark.pedantic(run, rounds=1, iterations=1)

    # Direct feasibility comparison on the raw rounded vectors.
    rng = np.random.default_rng(0)
    n = 5
    raw_violations = {"rdcs": 0, "independent": 0}
    trials = 4000
    for _ in range(trials):
        x = rng.uniform(0.0, 1.0, 20)
        x = np.clip(x / x.sum() * n, 0, 1)
        if rdcs_round(x, rng).sum() < n - 1e-9:
            raw_violations["rdcs"] += 1
        if independent_round(x, rng).sum() < n - 1e-9:
            raw_violations["independent"] += 1

    emit(
        "[ablation-rounding]\n"
        f"  raw '>= n participants' violations over {trials} roundings:"
        f" rdcs {raw_violations['rdcs']}, independent {raw_violations['independent']}\n"
        f"  FedL final accuracy: rdcs {traces['rdcs'].final_accuracy:.3f},"
        f" independent {traces['independent'].final_accuracy:.3f}"
    )
    # Independent rounding under-selects far more often than RDCS.
    assert raw_violations["rdcs"] < 0.2 * max(raw_violations["independent"], 1)
    # Both full runs still learn (the repair step catches infeasibility).
    assert traces["rdcs"].final_accuracy > 0.3
    assert traces["independent"].final_accuracy > 0.3
