"""Ablation — the eq. (4) Σ-relaxation vs a smooth-max surrogate.

The paper replaces the true epoch latency ``max_k d_k`` by the convex
upper bound ``Σ_k d_k`` (eq. 4).  This bench runs FedL end-to-end under
both the paper's sum objective and a weighted log-sum-exp smooth-max and
compares realized latency and accuracy — quantifying what the relaxation
costs.
"""

import dataclasses

import pytest

from repro.experiments.runner import run_experiment
from repro.experiments.scenarios import experiment_config, make_policy
from repro.rng import RngFactory


@pytest.mark.benchmark(group="ablation")
def test_ablation_objective_sum_vs_softmax(benchmark, emit):
    def run():
        out = {}
        for objective in ("sum", "softmax"):
            cfg = experiment_config(
                budget=800.0, num_clients=20, max_epochs=40, seed=12
            )
            cfg = cfg.replace(
                fedl=dataclasses.replace(cfg.fedl, objective=objective)
            )
            pol = make_policy("FedL", cfg, RngFactory(12).get(f"p.{objective}"))
            out[objective] = run_experiment(pol, cfg).trace
        return out

    traces = benchmark.pedantic(run, rounds=1, iterations=1)
    stats = {
        name: (
            tr.final_accuracy,
            float(tr.times[-1]),
            float((tr.column("epoch_latency") / tr.column("iterations")).mean()),
        )
        for name, tr in traces.items()
    }
    emit(
        "[ablation-objective] objective -> (final acc, total time s, mean per-iter lat s)\n"
        + "\n".join(
            f"  {n:8s}: acc={a:.3f}  T={t:7.1f}  lat={l:.3f}"
            for n, (a, t, l) in stats.items()
        )
    )
    # Both objectives drive a working controller.
    for name, tr in traces.items():
        assert tr.final_accuracy > 0.3, name
    # The relaxation is benign: the sum objective's realized mean latency
    # is within 2x of the smooth-max's (they optimize the same quantity up
    # to the relaxation gap).
    assert stats["sum"][2] <= 2.0 * stats["softmax"][2] + 0.05
