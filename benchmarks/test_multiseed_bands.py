"""Reproducibility bench — fig. 2 orderings across seeds.

Runs the FMNIST suite over multiple seeds and aggregates per-round
accuracy into mean ± std bands: the paper's orderings should hold in the
mean, not just in one lucky draw.
"""

import numpy as np
import pytest

from benchmarks.conftest import SWEEP_WORKERS
from repro.experiments.stats import aggregate_on_rounds, multi_seed_suite

SEEDS = (0, 1, 2)


@pytest.mark.benchmark(group="robustness")
def test_fig2_orderings_hold_in_the_mean(benchmark, emit):
    grouped = benchmark.pedantic(
        lambda: multi_seed_suite(
            "fmnist",
            True,
            seeds=SEEDS,
            budget=800.0,
            num_clients=16,
            max_epochs=40,
            workers=SWEEP_WORKERS,
        ),
        rounds=1,
        iterations=1,
    )
    bands = {name: aggregate_on_rounds(traces) for name, traces in grouped.items()}
    horizon = min(b.x.size for b in bands.values())
    lines = [f"[multiseed] mean±std accuracy at the common horizon ({len(SEEDS)} seeds)"]
    finals = {}
    for name, band in bands.items():
        mu, sd = band.mean[horizon - 1], band.std[horizon - 1]
        finals[name] = mu
        lines.append(f"  {name:7s}: {mu:.3f} ± {sd:.3f}")
    emit("\n".join(lines))
    # Mean final accuracy of FedL is top-tier across seeds.
    best_baseline = max(v for k, v in finals.items() if k != "FedL")
    assert finals["FedL"] >= best_baseline - 0.05
    # Bands are tight enough to be meaningful (the simulator is not noise-
    # dominated at this scale).
    assert all(b.std[horizon - 1] < 0.2 for b in bands.values())
