"""Theory bench — long-term constraint (3d) in REAL FL runs.

The synthetic-stream regret bench isolates the learner; this one checks
the global-loss constraint on the actual federated pipeline: the
accumulated violation ``Σ_t [F_t(w_t) − θ]⁺`` of FedL runs should grow
sublinearly — the time-averaged violation shrinks as the horizon (budget)
grows, because training drives the population loss below θ and keeps it
there.
"""

import numpy as np
import pytest

from repro.experiments.runner import run_experiment
from repro.experiments.scenarios import experiment_config, make_policy
from repro.rng import RngFactory

BUDGETS = (300.0, 800.0, 2000.0)


@pytest.mark.benchmark(group="theory")
def test_constraint_3d_timeaveraged_violation_shrinks(benchmark, emit):
    def run():
        out = {}
        for budget in BUDGETS:
            cfg = experiment_config(
                budget=budget, num_clients=16, max_epochs=120, seed=29
            )
            pol = make_policy("FedL", cfg, RngFactory(29).get(f"p.{budget}"))
            res = run_experiment(pol, cfg)
            tr = res.trace
            viol = np.maximum(
                tr.column("population_loss") - cfg.training.theta, 0.0
            )
            out[budget] = (len(tr), float(viol.sum()))
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["[thm-fit-fl] budget -> epochs, Σ[F_t−θ]⁺, time-averaged"]
    avgs = {}
    for budget, (epochs, fit) in results.items():
        avg = fit / max(epochs, 1)
        avgs[budget] = avg
        lines.append(
            f"  C={budget:6.0f}: T={epochs:4d}  fit={fit:8.2f}  fit/T={avg:.3f}"
        )
    emit("\n".join(lines))
    # Longer horizons → smaller time-averaged violation (sublinear fit).
    assert avgs[BUDGETS[-1]] < avgs[BUDGETS[0]]
    # And monotone across the sweep within tolerance.
    assert avgs[BUDGETS[1]] <= avgs[BUDGETS[0]] * 1.1
