"""Theory bench — Theorem 3: RDCS marginal preservation, plus the
selection-count concentration that motivates dependent rounding.

Also times the rounding itself (it sits on the per-epoch critical path).
"""

import numpy as np
import pytest

from repro.core.rounding import independent_round, rdcs_round

TRIALS = 20_000


@pytest.mark.benchmark(group="theory")
def test_rdcs_marginals_and_concentration(benchmark, emit):
    rng = np.random.default_rng(42)
    x = rng.uniform(0.05, 0.95, size=12)
    x = x / x.sum() * 5.0          # fractional selection summing to n = 5
    x = np.clip(x, 0.0, 1.0)

    def run():
        acc = np.zeros_like(x)
        sums_rdcs = np.empty(TRIALS)
        sums_ind = np.empty(TRIALS)
        for i in range(TRIALS):
            r = rdcs_round(x, rng)
            acc += r
            sums_rdcs[i] = r.sum()
            sums_ind[i] = independent_round(x, rng).sum()
        return acc / TRIALS, sums_rdcs, sums_ind

    marginals, sums_rdcs, sums_ind = benchmark.pedantic(run, rounds=1, iterations=1)

    max_dev = float(np.max(np.abs(marginals - x)))
    emit(
        "[thm-rdcs] Theorem 3 check over "
        f"{TRIALS} trials\n"
        f"  max |E[x_k] - x̃_k|      : {max_dev:.4f}\n"
        f"  selection-count std RDCS : {sums_rdcs.std():.3f}"
        f"  (sum preserved: {np.allclose(sums_rdcs, x.sum())})\n"
        f"  selection-count std indep: {sums_ind.std():.3f}"
    )
    # Theorem 3: marginals preserved (Monte-Carlo tolerance).
    sigma = np.sqrt(x * (1 - x) / TRIALS)
    assert np.all(np.abs(marginals - x) < 4.0 * sigma + 1e-3)
    # Dependent rounding concentrates the participation count.
    assert sums_rdcs.std() < 0.05
    assert sums_ind.std() > 3 * max(sums_rdcs.std(), 1e-9)
