"""Figure 2 — Accuracy vs. training time, Fashion-MNIST (IID & Non-IID).

Paper shape: Pow-d/FedAvg plateau slower per unit time than FedL; FedCS is
strong early but saturates when its per-epoch spend exhausts the budget;
FedL reaches the highest-accuracy band fastest and ends on top.
"""

import pytest

from benchmarks.conftest import cached_suite
from repro.experiments.figures import accuracy_vs_time
from repro.experiments.reporting import format_series


@pytest.mark.benchmark(group="fig2")
@pytest.mark.parametrize("iid", [True, False], ids=["iid", "non_iid"])
def test_fig2_fmnist_accuracy_vs_time(benchmark, emit, iid):
    traces = benchmark.pedantic(
        lambda: cached_suite("fmnist", iid), rounds=1, iterations=1
    )
    series = accuracy_vs_time(traces)
    emit(
        format_series(
            series,
            x_label="seconds",
            y_label="accuracy",
            title=f"[fig2] FMNIST accuracy vs time ({'IID' if iid else 'Non-IID'})",
        )
    )
    # Shape assertions (paper Sec. 6.2):
    # 1. every policy learns;
    fedl = traces["FedL"]
    for name, tr in traces.items():
        assert tr.best_accuracy() > 0.3, f"{name} failed to learn"
    # 2. FedL ends at (or above) the best final accuracy of the baselines
    #    within a small tolerance band;
    best_baseline = max(
        tr.final_accuracy for n, tr in traces.items() if n != "FedL"
    )
    assert fedl.final_accuracy >= best_baseline - 0.05
    # 3. FedCS saturates early on budget: it runs fewer epochs than FedL.
    assert len(traces["FedCS"]) < len(fedl)
