"""Quickstart: train a federated model with FedL client selection.

Runs the full pipeline — synthetic Fashion-MNIST stand-in, a 15-client
wireless edge cell, the FedL online controller — and prints the learning
trajectory.  Takes a few seconds on a laptop.

Usage::

    python examples/quickstart.py
"""

from repro.experiments import experiment_config, make_policy, run_experiment
from repro.rng import RngFactory


def main() -> None:
    # The config mirrors the paper's Sec. 6.1 setting, scaled to run fast:
    # path loss 128.1 + 37.6 log10 d, 20 MHz FDMA uplink, Bernoulli
    # availability, Poisson data volumes, costs in [0.1, 12].
    config = experiment_config(
        dataset="fmnist",
        iid=True,
        budget=600.0,          # long-term rental budget C
        num_clients=15,        # M
        min_participants=4,    # n
        max_epochs=40,
        seed=7,
    )

    policy = make_policy("FedL", config, RngFactory(config.seed).get("policy"))
    result = run_experiment(policy, config)

    trace = result.trace
    print(f"policy           : {trace.policy_name}")
    print(f"epochs run       : {len(trace)}  (stop: {result.stop_reason})")
    print(f"final accuracy   : {trace.final_accuracy:.3f}")
    print(f"simulated time   : {trace.times[-1]:.1f} s")
    print(f"budget spent     : {trace.total_spend:.1f} / {config.budget}")
    print()
    print("  round  acc    loss   latency  selected  iterations")
    for rec in trace.records[:: max(1, len(trace) // 10)]:
        print(
            f"  {rec.t:5d}  {rec.test_accuracy:.3f}  {rec.test_loss:.3f}"
            f"  {rec.epoch_latency:7.3f}  {rec.num_selected:8d}  {rec.iterations:10d}"
        )


if __name__ == "__main__":
    main()
