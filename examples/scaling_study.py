"""Regret/fit of sharded FedL selection at large populations.

PR 8 replaces the flat O(K²) per-epoch selection with S independent
per-shard subproblems.  Sharding changes *which* subproblem each online
learner sees, so this study re-verifies the paper's Corollary 1 trends
at scale: dynamic regret and dynamic fit per epoch must keep shrinking
as the horizon grows, for the sharded policy just as for the flat one.

Each horizon drives the full policy (FISTA descent, RDCS rounding,
learner feedback) through a drifting synthetic stream with *known*
per-slot problems, then scores the policy's fractional decisions
against the per-slot optima (warm-started offline solves).

Usage::

    python examples/scaling_study.py                 # K = 2 000 (fast)
    python examples/scaling_study.py --clients 10000 # paper-scale rerun
"""

import argparse
import time

import numpy as np

from repro.config import ShardConfig
from repro.core.fedl import FedLPolicy
from repro.core.phi import Phi
from repro.core.problem import EpochInputs, FedLProblem
from repro.core.regret import dynamic_fit, dynamic_regret
from repro.baselines.base import EpochContext, RoundFeedback
from repro.fl.shard import ShardedFedLPolicy

RHO_MAX = 6.0


def make_stream(m: int, horizon: int, rng: np.random.Generator):
    """Slowly-drifting per-epoch problems with known inputs."""
    base_tau = rng.uniform(0.2, 2.0, m)
    base_eta = rng.uniform(0.2, 0.7, m)
    slots = []
    for t in range(horizon):
        drift = 0.2 * np.sin(2 * np.pi * t / 40.0 + np.arange(m) % 97)
        slots.append(
            dict(
                tau=np.clip(base_tau + drift, 0.05, None),
                costs=rng.uniform(0.5, 3.0, m),
                available=rng.random(m) < 0.9,
                eta=np.clip(base_eta + 0.1 * drift, 0.0, 0.9),
                losses=rng.uniform(0.1, 2.0, m),
            )
        )
    return slots


def drive_policy(policy, slots, m: int):
    """Run the full select/update loop; return the fractional trajectory
    and the known per-slot problems it is scored against."""
    tau_last = np.full(m, 1.0)
    local_losses = np.full(m, np.nan)
    budget = 1e9  # unconstrained: isolate the learning dynamics
    problems, decisions = [], []
    t0 = time.perf_counter()
    for t, slot in enumerate(slots):
        ctx = EpochContext(
            t=t,
            available=slot["available"],
            costs=slot["costs"],
            remaining_budget=budget,
            min_participants=max(3, m // 100),
            tau_last=tau_last,
            local_losses=local_losses,
        )
        decision = policy.select(ctx)
        sel = decision.selected
        frac = decision.fractional_x
        rho = decision.rho if np.isfinite(decision.rho) else 1.0
        decisions.append(Phi(x=np.clip(frac, 0.0, 1.0), rho=max(1.0, rho)))
        problems.append(
            FedLProblem(
                EpochInputs(
                    tau=slot["tau"],
                    costs=slot["costs"],
                    available=slot["available"],
                    eta_hat=slot["eta"],
                    loss_gap=0.3,
                    loss_sensitivity=np.full(m, -0.12),
                    remaining_budget=budget,
                    min_participants=ctx.min_participants,
                ),
                rho_max=RHO_MAX,
            )
        )
        policy.update(
            RoundFeedback(
                t=t,
                selected=sel,
                tau_realized=slot["tau"],
                local_etas=np.where(sel, slot["eta"], np.nan),
                local_losses=np.where(slot["available"], slot["losses"], np.nan),
                population_loss=float(slot["losses"].mean()),
                cost_spent=float(slot["costs"][sel].sum()),
                epoch_latency=float(slot["tau"][sel].max()) if sel.any() else 0.0,
            )
        )
        tau_last = np.where(slot["available"], slot["tau"], tau_last)
        local_losses = np.where(slot["available"], slot["losses"], local_losses)
    return problems, decisions, time.perf_counter() - t0


def build(kind: str, m: int, seed: int):
    common = dict(
        num_clients=m,
        budget=1e9,
        min_participants=max(3, m // 100),
        theta=0.5,
        rng=np.random.default_rng(seed),
    )
    if kind == "flat":
        return FedLPolicy(**common)
    return ShardedFedLPolicy(
        **common, shard=ShardConfig(num_shards=max(2, m // 500))
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--clients", type=int, default=2_000)
    parser.add_argument("--horizons", type=int, nargs="+", default=[25, 50, 100])
    parser.add_argument("--seed", type=int, default=5)
    args = parser.parse_args()
    m = args.clients
    print(f"K = {m} clients, shards = {max(2, m // 500)}\n")
    header = (
        f"{'policy':>8} {'T':>5} {'Reg_d/T':>10} {'Fit_d/T':>10} "
        f"{'epochs/s':>9}"
    )
    print(header)
    for kind in ("flat", "sharded"):
        prev = None
        for horizon in args.horizons:
            rng = np.random.default_rng(args.seed)
            slots = make_stream(m, horizon, rng)
            policy = build(kind, m, args.seed)
            problems, decisions, seconds = drive_policy(policy, slots, m)
            reg, _ = dynamic_regret(problems, decisions)
            fit = dynamic_fit(problems, decisions)
            # Corollary 1 bounds Reg_d and Fit_d separately: the per-slot
            # benchmark is constrained (h <= 0), so a trajectory that pays
            # fit can drive regret negative — [Reg]+ is what must vanish.
            norm = (max(reg, 0.0) / horizon, fit / horizon)
            trend = ""
            if prev is not None and all(
                a <= b + 1e-9 for a, b in zip(norm, prev)
            ):
                trend = "  (shrinking)"
            prev = norm
            print(
                f"{kind:>8} {horizon:>5} {reg / horizon:>10.4f} "
                f"{fit / horizon:>10.4f} {horizon / seconds:>9.2f}{trend}"
            )
        print()
    print(
        "Both policies should show [Reg_d]+/T and Fit_d/T shrinking with T\n"
        "(Corollary 1's sublinearity), with the sharded column sustaining\n"
        "a far higher epochs/s at large K."
    )


if __name__ == "__main__":
    main()
