"""Dynamic regret & fit of the online learner on a synthetic stream.

Drives the saddle-point learner (paper eqs. 8-9) through a stream of
time-varying per-epoch problems with *known* per-slot optima, and reports
dynamic regret and dynamic fit as the horizon grows — the quantities
Corollary 1 bounds by O(T^{2/3}).

Usage::

    python examples/regret_analysis.py
"""

import numpy as np

from repro.core.online_learner import OnlineLearner
from repro.core.problem import EpochInputs, FedLProblem
from repro.core.regret import dynamic_fit, dynamic_regret
from repro.rng import RngFactory


def make_stream(m: int, horizon: int, rng: np.random.Generator):
    """A slowly-drifting stream of per-epoch problems (bounded variation)."""
    base_tau = rng.uniform(0.2, 2.0, m)
    base_eta = rng.uniform(0.2, 0.7, m)
    problems = []
    for t in range(horizon):
        drift = 0.2 * np.sin(2 * np.pi * t / 40.0 + np.arange(m))
        inputs = EpochInputs(
            tau=np.clip(base_tau + drift, 0.05, None),
            costs=rng.uniform(0.5, 3.0, m),
            available=np.ones(m, bool),
            eta_hat=np.clip(base_eta + 0.1 * drift, 0.0, 0.9),
            loss_gap=0.3,
            loss_sensitivity=np.full(m, -0.12),
            remaining_budget=1e6,   # isolate the learning dynamics
            min_participants=3,
        )
        problems.append(FedLProblem(inputs, rho_max=6.0))
    return problems


def run_horizon(horizon: int, rng_factory: RngFactory):
    m = 8
    problems = make_stream(m, horizon, rng_factory.fresh("stream"))
    step = horizon ** (-1.0 / 3.0)          # Corollary 1's rule
    learner = OnlineLearner(m, beta=step, delta=step, rho_max=6.0)
    decisions = []
    for prob in problems:
        phi = learner.descent_step(prob.inputs)
        decisions.append(phi)
        learner.dual_ascent(prob.h(phi))
    reg, _ = dynamic_regret(problems, decisions)
    fit = dynamic_fit(problems, decisions)
    return reg, fit


def main() -> None:
    rng_factory = RngFactory(5)
    print(f"{'T':>6} {'Reg_d':>10} {'Fit_d':>10} {'Reg_d/T':>10} {'Fit_d/T':>10}")
    for horizon in (25, 50, 100, 200):
        reg, fit = run_horizon(horizon, rng_factory)
        print(
            f"{horizon:>6} {reg:>10.2f} {fit:>10.2f}"
            f" {reg / horizon:>10.3f} {fit / horizon:>10.3f}"
        )
    print()
    print("Per-Corollary 1, Reg_d and Fit_d grow sublinearly: the per-epoch")
    print("averages (last two columns) shrink as the horizon T grows.")


if __name__ == "__main__":
    main()
