"""Shard geometry study: kmeans vs contiguous shard assignment.

:func:`repro.fl.shard.build_shard_plan` supports two ways to partition
the fleet: ``"contiguous"`` (split the id range into blocks — cheap,
geometry-blind) and ``"kmeans"`` (cluster client positions so shards
align with the edge-aggregator layout).  Selection quality is identical
— both are deterministic partitions fed to the same per-shard FedL
subproblems — but if each shard is served by its own edge aggregator,
the *physical* epoch latency differs: a contiguous shard scatters its
members across the whole cell, so its edge server sits far from most of
them, while a kmeans shard keeps radio links short.

This study prices that gap with the hierarchical latency model from
:mod:`repro.fl.hierarchy`: each shard becomes one edge cluster (server
at the shard's position centroid) and we compare the epoch latency of
random participant sets under both plans.

Usage::

    python examples/shard_geometry_study.py
"""

import numpy as np

from repro.config import NetworkConfig, PopulationConfig
from repro.env import build_population
from repro.fl.hierarchy import Clustering, hierarchical_epoch_latency
from repro.fl.shard import ShardPlan, build_shard_plan
from repro.rng import RngFactory

NUM_CLIENTS = 80
SELECTED = 24
TRIALS = 30


def plan_clustering(plan: ShardPlan, positions: np.ndarray) -> Clustering:
    """Treat each shard as one edge cluster, server at its centroid."""
    centroids = np.stack([positions[m].mean(axis=0) for m in plan.members])
    return Clustering(centroids=centroids, assignments=plan.shard_of)


def main() -> None:
    root = RngFactory(23)
    cfg = NetworkConfig()
    pop = build_population(
        PopulationConfig(num_clients=NUM_CLIENTS), root.get("pop"),
        cell_radius_m=cfg.cell_radius_m,
    )
    tau_loc = np.full(NUM_CLIENTS, 0.002)
    sel_rng = root.get("sel")

    print("shards   contiguous epoch (ms)   kmeans epoch (ms)   kmeans gain")
    for num_shards in (2, 4, 8):
        contiguous = build_shard_plan(NUM_CLIENTS, num_shards)
        geometric = build_shard_plan(
            NUM_CLIENTS, num_shards, assignment="kmeans",
            positions=pop.positions_m, rng=root.fresh(f"km{num_shards}"),
        )
        latencies = {"contiguous": [], "kmeans": []}
        for _ in range(TRIALS):
            sel = np.zeros(NUM_CLIENTS, bool)
            sel[sel_rng.choice(NUM_CLIENTS, size=SELECTED, replace=False)] = True
            for name, plan in (("contiguous", contiguous), ("kmeans", geometric)):
                latencies[name].append(
                    hierarchical_epoch_latency(
                        plan_clustering(plan, pop.positions_m),
                        pop.positions_m, sel, cfg, tau_loc,
                    )
                )
        cont = float(np.mean(latencies["contiguous"]))
        km = float(np.mean(latencies["kmeans"]))
        print(
            f"{num_shards:6d}   {cont * 1e3:21.2f}   {km * 1e3:17.2f}"
            f"   {cont / km:10.1f}x"
        )
    print()
    print("Contiguous shards ignore geometry, so each shard's edge server")
    print("ends up mid-cell with members scattered around it; kmeans shards")
    print("keep every radio link short and the epoch finishes sooner.  The")
    print("gap widens with shard count — more servers only help if clients")
    print("actually sit near their own.")


if __name__ == "__main__":
    main()
