"""Compare FedL against the paper's three baselines (mini Figure 2).

Runs FedL, FedAvg, FedCS, and Pow-d on identical environments and prints
accuracy-vs-time series plus the completion-time table the paper's
headline claim ("FedL reduces at least 38% completion time") is based on.

Usage::

    python examples/compare_policies.py [--dataset fmnist|cifar10] [--non-iid]
"""

import argparse

from repro.experiments import format_series, format_table, headline_claims
from repro.experiments.figures import accuracy_vs_time, run_policy_suite


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="fmnist", choices=["fmnist", "cifar10"])
    parser.add_argument("--non-iid", action="store_true")
    parser.add_argument("--budget", type=float, default=1500.0)
    args = parser.parse_args()

    traces = run_policy_suite(
        args.dataset,
        iid=not args.non_iid,
        budget=args.budget,
        num_clients=20,
        max_epochs=80,
    )

    print(
        format_series(
            accuracy_vs_time(traces),
            x_label="seconds",
            y_label="test accuracy",
            title=f"Accuracy vs time — {args.dataset} "
            f"({'IID' if not args.non_iid else 'Non-IID'})",
        )
    )
    print()

    target = 0.75
    rows = {}
    for name, tr in traces.items():
        t = tr.time_to_accuracy(target)
        rows[name] = {
            f"time to {target:.0%} (s)": t,
            "final acc": tr.final_accuracy,
            "epochs": len(tr),
            "spend": round(tr.total_spend, 1),
        }
    print(format_table(rows, title=f"Completion-time comparison (target {target:.0%})"))
    print()

    claims = headline_claims(traces, target=target)
    print(
        f"FedL vs best baseline: {claims['time_saving_pct']:.0f}% completion-time"
        f" saving; accuracy gain at equal time: {claims['accuracy_gain']:+.3f}"
    )


if __name__ == "__main__":
    main()
