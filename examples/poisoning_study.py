"""Poisoning study: Byzantine attacks vs robust aggregation.

Plants a fixed fraction of adversarial clients (sign-flipping, update
scaling, NaN injection — see :mod:`repro.fl.adversary`) and crosses them
with the defense aggregators in :mod:`repro.fl.defense`.  The grid makes
the robustness trade directly measurable: without a defense a handful of
sign-flipping clients stalls (or aborts) training, while coordinate-wise
median or trimmed-mean recovers most of the clean-run accuracy, at the
price of discarding informative extremes when nobody is attacking.

Updates that arrive non-finite (the ``nan`` attack) can never reach the
aggregate: without a defense the run aborts with
:class:`~repro.fl.defense.CorruptUpdateError`; with one they are
quarantined and counted per client.

Usage::

    python examples/poisoning_study.py
"""

from repro.experiments.scenarios import experiment_config
from repro.experiments.sweep import PolicySpec, SweepJob, execute_job
from repro.fl.defense import CorruptUpdateError

CONFIG = experiment_config(
    dataset="fmnist",
    iid=True,
    budget=600.0,
    seed=0,
    num_clients=15,
    min_participants=5,
    max_epochs=25,
)

ATTACKS = ("none", "sign-flip", "scale", "nan")
DEFENSES = ("none", "median", "trimmed-mean", "krum")


def run_cell(attack: str, defense: str):
    spec = PolicySpec(
        "FedL",
        attack=attack if attack != "none" else None,
        attack_fraction=0.2 if attack != "none" else None,
        defense=defense if defense != "none" else None,
    )
    return execute_job(SweepJob(spec, CONFIG))


def main() -> None:
    print(
        f"attack x defense grid — {CONFIG.population.num_clients} clients, "
        f"20% compromised, seed {CONFIG.seed}"
    )
    print()
    header = f"{'attack':>10} | " + " ".join(f"{d:>13}" for d in DEFENSES)
    print(header)
    print("-" * len(header))
    for attack in ATTACKS:
        cells = []
        for defense in DEFENSES:
            try:
                result = run_cell(attack, defense)
            except CorruptUpdateError:
                cells.append(f"{'aborted':>13}")
                continue
            acc = result.trace.final_accuracy
            quarantined = sum(
                r.num_quarantined for r in result.trace.records
            )
            tag = f"{acc:.3f}"
            if quarantined:
                tag += f" q{quarantined}"
            cells.append(f"{tag:>13}")
        print(f"{attack:>10} | " + " ".join(cells))
    print()
    print("Read the grid row-wise: the 'none' defense column shows what the")
    print("attack does to plain weighted-mean aggregation (the nan row")
    print("aborts — non-finite updates are refused, not averaged), and the")
    print("robust columns show how much each aggregator claws back.  'qN'")
    print("marks N client-epochs quarantined by the update screen.")


if __name__ == "__main__":
    main()
