"""Fairness-aware selection (the paper's future work) in action.

Runs plain FedL and Fair-FedL side by side and reports how participation
spreads across the fleet (Jain's index, per-client rates) and what the
fairness costs in accuracy and latency.

Usage::

    python examples/fairness_demo.py
"""

import numpy as np

from repro.core.fairness import jain_index
from repro.experiments import experiment_config, format_table, make_policy, run_experiment
from repro.rng import RngFactory


def main() -> None:
    config = experiment_config(
        budget=1000.0, num_clients=20, min_participants=5, max_epochs=50, seed=21
    )
    rows = {}
    fair_policy = None
    for name in ("FedL", "Fair-FedL"):
        policy = make_policy(name, config, RngFactory(21).get(f"p.{name}"))
        result = run_experiment(policy, config)
        tr = result.trace
        rows[name] = {
            "final acc": round(tr.final_accuracy, 3),
            "sim time (s)": round(float(tr.times[-1]), 2),
            "epochs": len(tr),
        }
        if name == "Fair-FedL":
            fair_policy = policy
    assert fair_policy is not None

    rates = fair_policy.tracker.rates()
    rows["Fair-FedL"]["jain"] = round(fair_policy.tracker.fairness(), 3)
    print(format_table(rows, title="FedL vs Fair-FedL"))
    print()
    print("Fair-FedL per-client participation rates (availability-adjusted):")
    print("  " + "  ".join(f"{r:.2f}" for r in rates))
    print(f"  Jain index: {jain_index(rates):.3f}  (1.0 = perfectly even)")
    print()
    print("The virtual-queue bias pulls chronically unselected clients in,")
    print("trading a little latency/accuracy for much broader participation —")
    print("useful when client data coverage or incentive fairness matters.")


if __name__ == "__main__":
    main()
