"""Budget-impact study (mini Figures 6-7).

Sweeps the long-term budget C and reports each policy's final loss — the
paper's point: baselines need a large budget to drive the loss down, while
FedL "consistently preserves lower losses even with a small budget".

Usage::

    python examples/budget_planning.py
"""

from repro.experiments import format_series
from repro.experiments.figures import budget_sweep


def main() -> None:
    budgets = (300.0, 800.0, 2000.0)
    series = budget_sweep(
        "fmnist",
        iid=True,
        budgets=budgets,
        num_clients=20,
        max_epochs=80,
    )
    print(
        format_series(
            series,
            x_label="budget C",
            y_label="final test loss",
            title="Budget impact — synthetic FMNIST (IID)",
        )
    )
    print()
    fedl = dict(series["FedL"])
    fedavg = dict(series["FedAvg"])
    small, large = budgets[0], budgets[-1]
    print(
        f"Loss at C={small:.0f}:  FedL {fedl[small]:.3f}  vs  FedAvg {fedavg[small]:.3f}"
    )
    print(
        f"Loss at C={large:.0f}:  FedL {fedl[large]:.3f}  vs  FedAvg {fedavg[large]:.3f}"
    )
    print()
    print("FedL's curve is flat: it finishes the task within the small budget;")
    print("the baselines need the extra rounds a bigger budget buys.")


if __name__ == "__main__":
    main()
