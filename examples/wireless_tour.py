"""A tour of the wireless edge substrate (paper Sec. 3.2 / 6.1).

Walks through the channel/latency model standalone — path loss, shadow
fading, FDMA rate vs bandwidth share, and how the epoch latency emerges
from the slowest selected client — useful for understanding why client
selection matters before touching any learning code.

Usage::

    python examples/wireless_tour.py
"""

import numpy as np

from repro.config import NetworkConfig, PopulationConfig
from repro.env import build_population
from repro.net import (
    ChannelModel,
    achievable_rate,
    allocate_bandwidth,
    compute_latency,
    epoch_latency,
    transmission_latency,
)
from repro.net.pathloss import pathloss_db
from repro.rng import RngFactory


def main() -> None:
    rng = RngFactory(2)
    net = NetworkConfig()
    pop_cfg = PopulationConfig(num_clients=12)
    pop = build_population(pop_cfg, rng.get("pop"), cell_radius_m=net.cell_radius_m)
    dist = pop.distances_m()

    print("1) Path loss (3GPP urban macro: 128.1 + 37.6 log10 d_km)")
    for d in (50, 150, 500):
        print(f"   d={d:4d} m -> {pathloss_db(float(d)):6.1f} dB")
    print()

    channel = ChannelModel(dist, net, rng.get("chan"))
    state = channel.sample()
    snr = state.snr_per_hz()
    print("2) Per-client SNR density (path loss + 8 dB AR(1) shadowing)")
    order = np.argsort(dist)
    for k in order[:3].tolist() + order[-3:].tolist():
        print(f"   client {k:2d}: d={dist[k]:5.1f} m  snr/Hz={snr[k]:9.3g}")
    print()

    print("3) FDMA rate vs bandwidth share (closest client)")
    best = int(order[0])
    for nshare in (1, 5, 20):
        b = net.bandwidth_hz / nshare
        r = achievable_rate(b, snr[best])
        print(f"   share B/{nshare:2d} = {b/1e6:5.1f} MHz -> {float(r)/1e6:6.2f} Mbit/s")
    print()

    print("4) Epoch latency = slowest selected client")
    counts = np.full(12, 40)
    bits = counts * pop.bits_per_sample
    tau_loc = np.asarray(
        compute_latency(pop.cycles_per_bit, bits, pop.cpu_freq_hz)
    )
    # Rank clients by their realized per-iteration latency at an equal
    # 5-way share (what a selector can learn from feedback).
    share_rates = np.asarray(achievable_rate(net.bandwidth_hz / 5.0, snr))
    tau = tau_loc + np.asarray(transmission_latency(net.upload_bits, share_rates))
    by_speed = np.argsort(tau)

    def epoch(mask: np.ndarray, policy: str) -> float:
        bw = allocate_bandwidth(
            state, mask, net.bandwidth_hz, net.upload_bits, policy=policy
        )
        rates = np.asarray(achievable_rate(bw, snr))
        tau_cm = np.asarray(transmission_latency(net.upload_bits, rates))
        return epoch_latency(tau_loc + tau_cm, mask)

    fast = np.zeros(12, bool)
    fast[by_speed[:5]] = True
    slow = np.zeros(12, bool)
    slow[by_speed[-5:]] = True
    print(f"   fastest-5, equal       split -> epoch latency {epoch(fast, 'equal')*1e3:8.2f} ms")
    print(f"   fastest-5, min_latency split -> epoch latency {epoch(fast, 'min_latency')*1e3:8.2f} ms")
    print(f"   slowest-5, equal       split -> epoch latency {epoch(slow, 'equal')*1e3:8.2f} ms")
    print()
    print("Selecting fast clients changes epoch latency by orders of")
    print("magnitude — the leverage FedL's online learner exploits.  (Note")
    print("that 'fast' is not simply 'near': shadowing reshuffles the")
    print("ranking, which is why selection must be learned online.)")


if __name__ == "__main__":
    main()
