"""Straggler study on the event-driven runtime.

Runs FedCS (which over-selects, so rounds carry slack above the
participation floor) through the message-level DES engine and tightens a
round deadline: clients whose compute+uplink timeline overruns it are
dropped from aggregation.  The trade the paper's completion-time story
implies — tighter deadlines buy shorter rounds at the cost of dropped
updates — becomes directly measurable.

Usage::

    python examples/straggler_study.py
"""

from repro.experiments.scenarios import experiment_config
from repro.experiments.sweep import PolicySpec, SweepJob, execute_job
from repro.sim import ParticipationFloorError

CONFIG = experiment_config(
    dataset="fmnist",
    iid=True,
    budget=400.0,
    seed=0,
    num_clients=12,
    min_participants=3,
    max_epochs=20,
)


def des_run(**sim_knobs):
    spec = PolicySpec("FedCS", engine="des", **sim_knobs)
    return execute_job(SweepJob(spec, CONFIG))


def summarize(result):
    records = result.trace.records
    latency = sum(r.epoch_latency for r in records) / len(records)
    selected = sum(r.num_selected for r in records)
    dropped = sum(r.num_failed for r in records)
    return {
        "rounds": len(records),
        "mean_latency": latency,
        "drop_frac": dropped / selected,
        "final_acc": result.trace.final_accuracy,
    }


def main() -> None:
    sync = summarize(des_run())
    print("sync barrier (no deadline):")
    print(
        f"  rounds={sync['rounds']}  mean round latency="
        f"{sync['mean_latency']:.4f}s  final_acc={sync['final_acc']:.3f}"
    )
    print()
    print(f"{'deadline':>10} {'latency':>9} {'dropped':>8} {'final acc':>10}")
    for fraction in (1.0, 0.7, 0.5, 0.35, 0.1):
        deadline = fraction * sync["mean_latency"]
        try:
            row = summarize(
                des_run(aggregation="deadline", sim_deadline_s=deadline)
            )
        except ParticipationFloorError as err:
            print(f"{deadline:>9.4f}s  aborted: {err}")
            continue
        print(
            f"{deadline:>9.4f}s {row['mean_latency']:>8.4f}s "
            f"{row['drop_frac']:>7.1%} {row['final_acc']:>10.3f}"
        )
    print()
    print("Tighter deadlines cap every round at the deadline width, so the")
    print("mean round latency falls monotonically while the dropped-update")
    print("fraction rises; past the participation floor the runtime refuses")
    print("to aggregate and raises ParticipationFloorError instead of")
    print("silently training on too few clients.")


if __name__ == "__main__":
    main()
