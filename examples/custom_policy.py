"""Plug a custom client-selection policy into the FedL framework.

The framework's :class:`~repro.baselines.base.SelectionPolicy` protocol is
two methods — ``select(ctx)`` and ``update(feedback)`` — so any selection
idea drops in.  This example implements a *cheapest-first* policy (always
rent the n cheapest available clients, stretching the budget as far as it
goes) and benchmarks it against FedL.

Usage::

    python examples/custom_policy.py
"""

import numpy as np

from repro.baselines.base import Decision, EpochContext, RoundFeedback, enforce_feasibility
from repro.experiments import experiment_config, format_table, make_policy, run_experiment
from repro.rng import RngFactory


class CheapestFirstPolicy:
    """Rent the n cheapest available clients every epoch.

    Maximizes the number of epochs a budget buys — the opposite corner of
    the design space from FedCS's participation maximization.  A useful
    straw man: it shows that budget-stretching alone does not give good
    accuracy-per-second (the cheap clients may be slow).
    """

    def __init__(self, rng: np.random.Generator, iterations: int = 2) -> None:
        self.name = "Cheapest"
        self.rng = rng
        self.iterations = iterations

    def select(self, ctx: EpochContext) -> Decision:
        avail = np.flatnonzero(ctx.available)
        order = avail[np.argsort(ctx.costs[avail], kind="stable")]
        mask = np.zeros(ctx.num_clients, dtype=bool)
        mask[order[: ctx.min_participants]] = True
        mask = enforce_feasibility(mask, ctx, self.rng)
        return Decision(selected=mask, iterations=self.iterations)

    def update(self, feedback: RoundFeedback) -> None:
        """Stateless."""


def main() -> None:
    config = experiment_config(
        budget=800.0, num_clients=20, min_participants=4, max_epochs=60, seed=11
    )
    rows = {}
    for name, policy in [
        ("FedL", make_policy("FedL", config, RngFactory(11).get("fedl"))),
        ("Cheapest", CheapestFirstPolicy(RngFactory(11).get("cheap"))),
    ]:
        result = run_experiment(policy, config)
        tr = result.trace
        rows[name] = {
            "epochs": len(tr),
            "final acc": round(tr.final_accuracy, 3),
            "sim time (s)": round(float(tr.times[-1]), 1),
            "spend": round(tr.total_spend, 1),
            "time to 70%": tr.time_to_accuracy(0.70),
        }
    print(format_table(rows, title="Custom policy vs FedL"))
    print()
    print("CheapestFirst buys more epochs but picks slow clients;")
    print("FedL balances latency against the same budget constraint.")


if __name__ == "__main__":
    main()
