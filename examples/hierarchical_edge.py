"""Hierarchical edge aggregation (related work [2]) — a latency study.

Places edge servers by k-means over the client layout and compares the
epoch latency of flat (client → macro cell) vs hierarchical
(client → edge → cloud) aggregation for the same participant sets.

Usage::

    python examples/hierarchical_edge.py
"""

import numpy as np

from repro.config import NetworkConfig, PopulationConfig
from repro.env import build_population
from repro.fl.hierarchy import cluster_clients, hierarchical_epoch_latency
from repro.net import ChannelModel, achievable_rate, transmission_latency
from repro.rng import RngFactory


def main() -> None:
    root = RngFactory(8)
    cfg = NetworkConfig()
    pop = build_population(
        PopulationConfig(num_clients=60), root.get("pop"),
        cell_radius_m=cfg.cell_radius_m,
    )
    tau_loc = np.full(60, 0.002)
    chan = ChannelModel(pop.distances_m(), cfg, root.get("chan"))
    snr = chan.mean_state().snr_per_hz()
    rng = root.get("sel")

    print("clusters   flat epoch (ms)   hierarchical epoch (ms)   speedup")
    for k in (2, 4, 8):
        clustering = cluster_clients(pop.positions_m, k, root.fresh(f"km{k}"))
        flat_vals, hier_vals = [], []
        for _ in range(30):
            sel = np.zeros(60, bool)
            sel[rng.choice(60, size=20, replace=False)] = True
            rates = np.asarray(achievable_rate(cfg.bandwidth_hz / 20, snr))
            tau_cm = np.asarray(transmission_latency(cfg.upload_bits, rates))
            flat_vals.append(float(np.max((tau_loc + tau_cm)[sel])))
            hier_vals.append(
                hierarchical_epoch_latency(
                    clustering, pop.positions_m, sel, cfg, tau_loc
                )
            )
        flat = float(np.mean(flat_vals))
        hier = float(np.mean(hier_vals))
        print(
            f"{k:8d}   {flat * 1e3:15.2f}   {hier * 1e3:23.2f}   {flat / hier:7.1f}x"
        )
    print()
    print("Shorter radio links plus per-cluster band reuse cut the epoch")
    print("latency; more edge servers help until clusters get so small the")
    print("backhaul dominates.")


if __name__ == "__main__":
    main()
